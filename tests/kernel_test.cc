// Columnar detect kernels: bit-equality against the interpreted oracle.
// Every test runs the same detection twice — kernels on vs BD_KERNELS=0
// semantics (ctx.set_kernels_enabled(false)) — and requires byte-identical
// violation streams (same violations, same fixes, same order) plus equal
// detect_calls, across FD/DC/CFD/CHECK/dedup rules, null-heavy data, empty
// and single-row blocks, injected faults, and the Clean() fixpoint.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "core/bigdansing.h"
#include "core/rule_engine.h"
#include "data/csv.h"
#include "data/dictionary.h"
#include "datagen/datagen.h"
#include "dataflow/context.h"
#include "rules/cfd_rule.h"
#include "rules/detect_kernel.h"
#include "rules/parser.h"
#include "rules/udf_rule.h"

namespace bigdansing {
namespace {

Table PaperTable() {
  const char* csv =
      "name,zipcode,city,state,salary,rate\n"
      "Annie,10011,NY,NY,24000,15\n"
      "Laure,90210,LA,CA,25000,10\n"
      "John,60601,CH,IL,40000,25\n"
      "Mark,90210,SF,CA,88000,30\n"
      "Robert,68027,CH,IL,30000,5\n"
      "Mary,90210,LA,CA,88000,30\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return *table;
}

/// Nulls in blocking keys, RHS values, and whole rows; a unique key
/// (single-row block) and an all-null key row (no block at all).
Table NullTable() {
  const char* csv =
      "name,zipcode,city,state\n"
      "a,90210,LA,CA\n"
      "b,90210,,CA\n"
      "c,,NY,NY\n"
      "d,90210,SF,\n"
      "e,,,\n"
      "f,10011,NY,NY\n"
      "g,90210,,CA\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return *table;
}

/// Byte rendering of a full detection result: violations, cells, and fixes
/// in stream order. Two results with equal fingerprints are bit-identical
/// for every downstream consumer (repair, lineage, reporting).
std::string DetectFingerprint(const DetectionResult& result) {
  std::string out;
  auto cell = [&](const Cell& c) {
    out += "t" + std::to_string(c.ref.row_id) + "[" +
           std::to_string(c.ref.column) + "]" + c.attribute + "=" +
           c.value.ToString() + ";";
  };
  for (const auto& vf : result.violations) {
    out += vf.violation.rule_name + ":";
    for (const auto& c : vf.violation.cells) cell(c);
    out += "fixes{";
    for (const auto& fix : vf.fixes) {
      cell(fix.left);
      out += FixOpName(fix.op);
      if (fix.right.is_cell) {
        cell(fix.right.cell);
      } else {
        out += fix.right.constant.ToString();
      }
      out += "&";
    }
    out += "}\n";
  }
  return out;
}

std::string TableFingerprint(const Table& table) {
  std::string out;
  for (const Row& row : table.rows()) {
    out += std::to_string(row.id());
    for (size_t c = 0; c < row.size(); ++c) {
      out += '|';
      out += row.value(c).ToString();
    }
    out += "\n";
  }
  return out;
}

std::vector<DetectionResult> RunDetect(const Table& table,
                                       const std::vector<RulePtr>& rules,
                                       bool kernels, size_t workers = 4,
                                       PlannerOptions options = {}) {
  ExecutionContext ctx(workers);
  ctx.set_kernels_enabled(kernels);
  RuleEngine engine(&ctx, options);
  DetectRequest request;
  request.table = &table;
  request.rules = rules;
  auto results = engine.Detect(request);
  EXPECT_TRUE(results.ok()) << results.status().ToString();
  return std::move(*results);
}

/// The core oracle check: kernel vs interpreted runs must agree byte for
/// byte. `expect_kernel` additionally asserts the kernel path actually
/// engaged (plan description carries the [kernel] marker) — without it a
/// silently-fallback path would vacuously pass.
void ExpectBitIdentical(const Table& table, const std::vector<RulePtr>& rules,
                        bool expect_kernel = true, size_t workers = 4,
                        PlannerOptions options = {}) {
  auto kernel = RunDetect(table, rules, /*kernels=*/true, workers, options);
  auto interp = RunDetect(table, rules, /*kernels=*/false, workers, options);
  ASSERT_EQ(kernel.size(), interp.size());
  for (size_t r = 0; r < kernel.size(); ++r) {
    EXPECT_EQ(DetectFingerprint(kernel[r]), DetectFingerprint(interp[r]))
        << "rule " << r << " diverged";
    EXPECT_EQ(kernel[r].detect_calls, interp[r].detect_calls)
        << "rule " << r << " evaluated a different candidate count";
    if (expect_kernel) {
      EXPECT_NE(kernel[r].plan_description.find("[kernel]"),
                std::string::npos)
          << kernel[r].plan_description;
    }
    EXPECT_EQ(interp[r].plan_description.find("[kernel]"), std::string::npos)
        << interp[r].plan_description;
  }
}

TEST(ValuePoolTest, CodesPreserveOrderEqualityAndHashes) {
  ValuePool pool({Value(int64_t{5}), Value(10.5), Value("NY"), Value("ny")});
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.CodeOf(Value(int64_t{5})), 0u);
  EXPECT_EQ(pool.CodeOf(Value(5.0)), 0u);  // int 5 == double 5.0
  EXPECT_EQ(pool.CodeOf(Value("NY")), 2u);
  EXPECT_EQ(pool.CodeOf(Value::Null()), ValuePool::kNullCode);
  EXPECT_EQ(pool.CodeOf(Value("absent")), ValuePool::kAbsentCode);
  // value < 10.5 ⟺ code < LowerBound; value <= 10.5 ⟺ code < UpperBound.
  EXPECT_EQ(pool.LowerBound(Value(10.5)), 1u);
  EXPECT_EQ(pool.UpperBound(Value(10.5)), 2u);
  for (uint32_t c = 0; c < pool.size(); ++c) {
    EXPECT_EQ(pool.hash(c), pool.value(c).Hash());
  }
}

TEST(KernelRegistryTest, CompilesDeclarativeRulesRejectsUdfAndSimilarity) {
  Table table = PaperTable();
  auto fd = *ParseRule("f: FD: zipcode -> city");
  ASSERT_TRUE(fd->Bind(table.schema()).ok());
  EXPECT_NE(KernelRegistry::Instance().Compile(*fd, table.schema()), nullptr);

  auto udf = std::make_shared<UdfRule>("u");
  EXPECT_EQ(KernelRegistry::Instance().Compile(*udf, table.schema()), nullptr);

  Predicate sim;
  sim.left_attr = "city";
  sim.op = CmpOp::kSimilar;
  sim.right_attr = "city";
  DcRule sim_rule("s", {sim});
  EXPECT_EQ(KernelRegistry::Instance().Compile(sim_rule, table.schema()),
            nullptr);
}

TEST(KernelBitEquality, FdPaperTable) {
  Table table = PaperTable();
  auto rule = *ParseRule("phiF: FD: zipcode -> city");
  ExpectBitIdentical(table, {rule});
  // The canonical result survives the kernel routing unchanged.
  auto results = RunDetect(table, {rule}, /*kernels=*/true);
  std::set<std::pair<RowId, RowId>> pairs;
  for (const auto& vf : results[0].violations) {
    auto ids = vf.violation.RowIds();
    pairs.insert({std::min(ids[0], ids[1]), std::max(ids[0], ids[1])});
  }
  EXPECT_EQ(pairs, (std::set<std::pair<RowId, RowId>>{{1, 3}, {3, 5}}));
  EXPECT_EQ(results[0].detect_calls, 3u);
}

TEST(KernelBitEquality, FdTaxWorkloadSharedScope) {
  auto data = GenerateTaxA(3000, 0.1, /*seed=*/17);
  // Two FDs sharing scope/blocking columns exercise the encode/block caches.
  ExpectBitIdentical(data.dirty, {*ParseRule("phi1: FD: zipcode -> city"),
                                  *ParseRule("phi6: FD: zipcode -> state")});
}

TEST(KernelBitEquality, BlockedSymmetricDc) {
  auto data = GenerateTaxA(1500, 0.15, /*seed=*/5);
  ExpectBitIdentical(
      data.dirty,
      {*ParseRule("dcb: DC: t1.zipcode = t2.zipcode & t1.state != t2.state")});
}

TEST(KernelBitEquality, BlockedOrderingDcUsesCrossProductOrder) {
  // Equality blocking plus an ordering predicate: the planner picks OCJoin
  // but the blocked executor enumerates ordered pairs per block — the
  // kernel must reproduce that exact (asymmetric) order.
  Table table = PaperTable();
  ExpectBitIdentical(
      table,
      {*ParseRule("dco: DC: t1.zipcode = t2.zipcode & t1.salary > t2.salary")});
}

TEST(KernelBitEquality, UnblockedDcAndCrossProductWrapper) {
  Table table = PaperTable();
  auto rule =
      *ParseRule("dcu: DC: t1.city != t2.city & t1.state != t2.state");
  ExpectBitIdentical(table, {rule});
  // Same rule through the CrossProduct wrapper (UCrossProduct disabled):
  // pair-list materialization order must survive kernelization too.
  PlannerOptions no_ucross;
  no_ucross.enable_ucross_product = false;
  ExpectBitIdentical(table, {rule}, /*expect_kernel=*/true, 4, no_ucross);
  // And with blocking disabled entirely for an FD (unblocked FD path).
  PlannerOptions no_block;
  no_block.enable_blocking = false;
  ExpectBitIdentical(table, {*ParseRule("f: FD: zipcode -> city")},
                     /*expect_kernel=*/true, 4, no_block);
}

TEST(KernelBitEquality, CheckRuleSinglePath) {
  Table table = PaperTable();
  ExpectBitIdentical(
      table, {*ParseRule("chk: CHECK: t1.salary > 30000 & t1.rate < 27")});
}

TEST(KernelBitEquality, VariableAndConstantCfd) {
  Table table = PaperTable();
  // Variable CFD: within state = CA, zipcode -> city.
  auto variable = std::make_shared<CfdRule>(
      "cfd_var",
      std::vector<CfdPatternAttr>{{"state", Value("CA")},
                                  {"zipcode", std::nullopt}},
      CfdPatternAttr{"city", std::nullopt});
  // Constant CFD: zipcode 90210 implies city LA (Mark/SF violates).
  auto constant = std::make_shared<CfdRule>(
      "cfd_const",
      std::vector<CfdPatternAttr>{{"zipcode", Value(int64_t{90210})}},
      CfdPatternAttr{"city", Value("LA")});
  ExpectBitIdentical(table, {variable, constant});
  auto results = RunDetect(table, {constant}, /*kernels=*/true);
  ASSERT_EQ(results[0].violations.size(), 1u);  // Mark only
  EXPECT_EQ(results[0].violations[0].violation.cells[0].ref.row_id, 3);
}

TEST(KernelBitEquality, NullKeysEmptyAndSingleRowBlocks) {
  Table table = NullTable();
  ExpectBitIdentical(table, {*ParseRule("f: FD: zipcode -> city"),
                             *ParseRule("g: FD: zipcode -> state"),
                             *ParseRule("h: FD: city -> state")});
  // Empty input: zero blocks everywhere.
  Table empty =
      *ReadCsvString("name,zipcode,city,state\n", CsvOptions{});
  ExpectBitIdentical(empty, {*ParseRule("f: FD: zipcode -> city")});
}

TEST(KernelBitEquality, ConstantsAbsentNullAndRanges) {
  Table table = PaperTable();
  // Range constant between two pooled values, an absent equality constant,
  // and a never-true null constant.
  Predicate range;  // t1.salary >= 30000 (range bound in code space)
  range.left_attr = "salary";
  range.op = CmpOp::kGeq;
  range.right_is_constant = true;
  range.constant = Value(int64_t{30000});
  Predicate block;  // t1.zipcode = t2.zipcode
  block.left_attr = "zipcode";
  block.op = CmpOp::kEq;
  block.right_attr = "zipcode";
  Predicate neq;  // t1.city != t2.city
  neq.left_attr = "city";
  neq.op = CmpOp::kNeq;
  neq.right_attr = "city";
  auto ranged = std::make_shared<DcRule>(
      "ranged", std::vector<Predicate>{range, block, neq});

  Predicate absent = range;  // = 12345 appears nowhere in the data
  absent.op = CmpOp::kEq;
  absent.constant = Value(int64_t{12345});
  auto absent_rule = std::make_shared<DcRule>(
      "absent", std::vector<Predicate>{absent, block, neq});

  Predicate null_const = range;  // null constant: statically false
  null_const.constant = Value::Null();
  auto never_rule = std::make_shared<DcRule>(
      "never", std::vector<Predicate>{null_const, block, neq});

  ExpectBitIdentical(table, {ranged, absent_rule, never_rule});
  auto results = RunDetect(table, {absent_rule, never_rule}, true);
  EXPECT_TRUE(results[0].violations.empty());
  EXPECT_TRUE(results[1].violations.empty());
}

TEST(KernelBitEquality, UdfDedupStaysInterpreted) {
  DedupData data = GenerateCustomerDedup(300, 2, 0.05, /*seed=*/3);
  auto dedup = std::make_shared<UdfRule>("dedup");
  dedup->set_relevant_attributes({"name", "address", "phone"})
      .set_blocking_attributes({"address"})
      .set_symmetric(true)
      .set_detect([](const Schema& schema, const Row& a, const Row& b,
                     std::vector<Violation>* out) {
        // Detect sees the scoped schema — resolve columns by name.
        size_t name_col = *schema.IndexOf("name");
        size_t phone_col = *schema.IndexOf("phone");
        if (a.value(name_col) == b.value(name_col) &&
            a.value(phone_col) == b.value(phone_col)) {
          Violation v;
          v.rule_name = "dedup";
          v.cells.push_back(UdfRule::MakeUdfCell(a, name_col, schema));
          v.cells.push_back(UdfRule::MakeUdfCell(b, name_col, schema));
          out->push_back(std::move(v));
        }
      });
  // UDF rules have no kernel compiler: identical by construction, and the
  // kernels-on run must NOT carry the kernel marker.
  ExpectBitIdentical(data.table, {dedup}, /*expect_kernel=*/false);
}

TEST(KernelBitEquality, UnderInjectedFaults) {
  struct InjectorGuard {
    ~InjectorGuard() {
      FaultInjector::Instance().Clear();
      FaultInjector::Instance().set_site_tracking(false);
      FaultInjector::Instance().ClearSeenSites();
    }
  } guard;
  auto data = GenerateTaxA(800, 0.1, /*seed=*/23);
  std::vector<RulePtr> rules = {*ParseRule("phi1: FD: zipcode -> city")};

  auto fault_free = RunDetect(data.dirty, rules, /*kernels=*/true);
  auto interp = RunDetect(data.dirty, rules, /*kernels=*/false);

  ASSERT_TRUE(FaultInjector::Instance()
                  .Configure("stage=*,kind=throw,prob=0.05", /*seed=*/13)
                  .ok());
  auto faulted = RunDetect(data.dirty, rules, /*kernels=*/true);
  FaultInjector::Instance().Clear();

  EXPECT_EQ(DetectFingerprint(faulted[0]), DetectFingerprint(fault_free[0]));
  EXPECT_EQ(DetectFingerprint(faulted[0]), DetectFingerprint(interp[0]));
  EXPECT_EQ(faulted[0].detect_calls, interp[0].detect_calls);
}

TEST(KernelBitEquality, CleanFixpointByteIdentical) {
  auto data = GenerateTaxA(600, 0.1, /*seed=*/29);
  std::vector<RulePtr> rules = {*ParseRule("phi1: FD: zipcode -> city"),
                                *ParseRule("phi6: FD: zipcode -> state")};
  std::string with_kernels;
  {
    ExecutionContext ctx(4);
    ctx.set_kernels_enabled(true);
    BigDansing system(&ctx);
    Table working = data.dirty;
    auto report = system.Clean(&working, rules);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    with_kernels = TableFingerprint(working);
  }
  std::string interpreted;
  {
    ExecutionContext ctx(4);
    ctx.set_kernels_enabled(false);
    BigDansing system(&ctx);
    Table working = data.dirty;
    auto report = system.Clean(&working, rules);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    interpreted = TableFingerprint(working);
  }
  EXPECT_EQ(with_kernels, interpreted);
}

TEST(KernelStages, ReportedWithKernelPrefixOnlyWhenEnabled) {
  Table table = PaperTable();
  auto rule = *ParseRule("phiF: FD: zipcode -> city");
  auto has_kernel_stage = [](const Metrics& metrics) {
    for (const auto& report : metrics.StageReports()) {
      if (report.name.rfind("kernel:", 0) == 0) return true;
    }
    return false;
  };
  {
    ExecutionContext ctx(4);
    ctx.set_kernels_enabled(true);
    RuleEngine engine(&ctx);
    ASSERT_TRUE(engine.Detect(table, rule).ok());
    EXPECT_TRUE(has_kernel_stage(ctx.metrics()));
  }
  {
    ExecutionContext ctx(4);
    ctx.set_kernels_enabled(false);
    RuleEngine engine(&ctx);
    ASSERT_TRUE(engine.Detect(table, rule).ok());
    EXPECT_FALSE(has_kernel_stage(ctx.metrics()));
  }
}

}  // namespace
}  // namespace bigdansing
