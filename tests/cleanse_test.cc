// End-to-end cleansing tests on generated workloads: repair quality,
// convergence, termination safety, and equivalence of the repair
// deployments — the invariants behind Table 4 and Fig 12(b).
#include <gtest/gtest.h>

#include <tuple>

#include "core/bigdansing.h"
#include "datagen/datagen.h"
#include "repair/quality.h"
#include "rules/parser.h"
#include "rules/udf_rule.h"

namespace bigdansing {
namespace {

class TaxACleanParam
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(TaxACleanParam, FdRepairRecoversGroundTruth) {
  auto [rows, error_rate] = GetParam();
  auto data = GenerateTaxA(rows, error_rate, /*seed=*/rows + 1);
  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report = system.Clean(
      &working, {*ParseRule("phi1: FD: zipcode -> city"),
                 *ParseRule("phi6: FD: zipcode -> state")});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->converged);
  auto quality = EvaluateRepair(data.dirty, working, data.clean);
  ASSERT_TRUE(quality.ok());
  // Blocks average ~10 rows with at most a couple of corruptions, so the
  // majority vote recovers nearly all errors.
  EXPECT_GT(quality->precision, 0.95) << quality->ToString();
  EXPECT_GT(quality->recall, 0.9) << quality->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRates, TaxACleanParam,
    ::testing::Values(std::make_tuple(1000, 0.05), std::make_tuple(1000, 0.1),
                      std::make_tuple(5000, 0.1), std::make_tuple(2000, 0.02)));

TEST(Cleanse, HypergraphRepairImprovesTaxB) {
  auto data = GenerateTaxB(3000, 0.1, 7);
  ExecutionContext ctx(4);
  CleanOptions options;
  options.repair_mode = RepairMode::kHypergraph;
  BigDansing system(&ctx, options);
  Table working = data.dirty;
  auto report = system.Clean(
      &working,
      {*ParseRule("phiD: DC: t1.salary > t2.salary & t1.rate < t2.rate")});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  auto distance = EvaluateRepairDistance(data.dirty, working, data.clean, "rate");
  ASSERT_TRUE(distance.ok());
  // The repaired rates are far closer to the truth than the dirty ones.
  EXPECT_LT(distance->repaired_distance, distance->dirty_distance / 10);
}

TEST(Cleanse, RepairedInstanceHasNoViolations) {
  auto data = GenerateTaxB(2000, 0.1, 8);
  ExecutionContext ctx(4);
  CleanOptions options;
  options.repair_mode = RepairMode::kHypergraph;
  BigDansing system(&ctx, options);
  Table working = data.dirty;
  auto rule = *ParseRule("phiD: DC: t1.salary > t2.salary & t1.rate < t2.rate");
  auto report = system.Clean(&working, {rule});
  ASSERT_TRUE(report.ok());
  RuleEngine engine(&ctx);
  auto residual = engine.Detect(working, rule);
  ASSERT_TRUE(residual.ok());
  EXPECT_TRUE(residual->violations.empty());
}

TEST(Cleanse, AllThreeRepairModesConvergeOnFds) {
  auto data = GenerateHai(3000, 0.1, 9, {3});
  auto rule = "phi6: FD: zipcode -> state";
  for (RepairMode mode :
       {RepairMode::kEquivalenceClass, RepairMode::kHypergraph,
        RepairMode::kDistributedEquivalenceClass}) {
    ExecutionContext ctx(4);
    CleanOptions options;
    options.repair_mode = mode;
    BigDansing system(&ctx, options);
    Table working = data.dirty;
    auto report = system.Clean(&working, {*ParseRule(rule)});
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->converged) << static_cast<int>(mode);
    auto quality = EvaluateRepair(data.dirty, working, data.clean);
    ASSERT_TRUE(quality.ok());
    EXPECT_GT(quality->recall, 0.9)
        << "mode " << static_cast<int>(mode) << ": " << quality->ToString();
  }
}

TEST(Cleanse, OscillatingRuleTerminatesViaFreezing) {
  // An adversarial UDF rule whose fix always demands a DIFFERENT value, so
  // every repair re-violates. The freeze mechanism (§2.2 termination) must
  // stop the loop within the iteration budget.
  Table t(Schema({"a"}));
  t.AppendRow({Value(static_cast<int64_t>(1))});
  t.AppendRow({Value(static_cast<int64_t>(2))});

  auto rule = std::make_shared<UdfRule>("oscillator");
  rule->set_symmetric(true)
      .set_detect([](const Schema& schema, const Row& a, const Row& b,
                     std::vector<Violation>* out) {
        Violation v;  // Every pair always violates.
        v.rule_name = "oscillator";
        v.cells.push_back(UdfRule::MakeUdfCell(a, 0, schema));
        v.cells.push_back(UdfRule::MakeUdfCell(b, 0, schema));
        out->push_back(std::move(v));
      })
      .set_gen_fix([](const Schema&, const Violation& v, std::vector<Fix>* out) {
        // Demand left = right + 1: applying it changes the data but the
        // violation re-fires forever.
        Fix fix;
        fix.left = v.cells[0];
        fix.op = FixOp::kEq;
        fix.right = FixTerm::MakeConstant(
            Value(v.cells[1].value.AsNumber() + 1.0));
        out->push_back(std::move(fix));
      });

  ExecutionContext ctx(2);
  CleanOptions options;
  options.max_iterations = 6;
  options.freeze_after_updates = 2;
  BigDansing system(&ctx, options);
  auto report = system.Clean(&t, {rule});
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->num_iterations(), 6u);
}

TEST(Cleanse, MultipleIterationsWhenRulesInteract) {
  // phi7 repairs zipcode via the phone block; the new zipcode may then be
  // inconsistent with phi6's state until the next iteration fixes it.
  auto data = GenerateHai(4000, 0.1, 10, {3, 4});
  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report = system.Clean(&working,
                             {*ParseRule("phi6: FD: zipcode -> state"),
                              *ParseRule("phi7: FD: phone -> zipcode")});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_GE(report->num_iterations(), 2u);
  auto quality = EvaluateRepair(data.dirty, working, data.clean);
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality->recall, 0.9) << quality->ToString();
}

TEST(Cleanse, KWaySplitRepairStillConverges) {
  auto data = GenerateTaxA(2000, 0.1, 11);
  ExecutionContext ctx(4);
  CleanOptions options;
  options.repair.max_component_edges = 3;  // Force splits aggressively.
  options.repair.kway_parts = 3;
  BigDansing system(&ctx, options);
  Table working = data.dirty;
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  auto report = system.Clean(&working, {rule});
  ASSERT_TRUE(report.ok());
  RuleEngine engine(&ctx);
  auto residual = engine.Detect(working, rule);
  ASSERT_TRUE(residual.ok());
  EXPECT_TRUE(residual->violations.empty());
}

TEST(Cleanse, EmptyTableAndCleanTableAreNoops) {
  ExecutionContext ctx(2);
  BigDansing system(&ctx);
  Table empty(Schema({"zipcode", "city"}));
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  auto report = system.Clean(&empty, {rule});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_EQ(report->num_iterations(), 1u);

  auto data = GenerateTaxA(500, 0.0, 12);
  Table working = data.dirty;
  auto report2 = system.Clean(&working, {rule});
  ASSERT_TRUE(report2.ok());
  EXPECT_TRUE(report2->converged);
  EXPECT_EQ(working, data.clean);
}

}  // namespace
}  // namespace bigdansing
