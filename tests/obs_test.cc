// Tests for the live observability plane: the HTTP endpoint dispatch
// (strict JSON / Prometheus lint), live /stages snapshots including
// in-flight stages, the sampling profiler's attribution, per-stage
// resource accounting, and the non-finite JSON regression.
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "common/metrics_registry.h"
#include "common/trace.h"
#include "core/bigdansing.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "dataflow/context.h"
#include "dataflow/stage_executor.h"
#include "obs/http_server.h"
#include "obs/profiler.h"
#include "obs/quality.h"
#include "obs/resource_accounting.h"
#include "obs/stage_directory.h"
#include "prom_lint_test_util.h"
#include "rules/parser.h"
#include "strict_json_test_util.h"

namespace bigdansing {
namespace {

bool ParsesStrictly(const std::string& text, JsonValue* out,
                    std::string* error) {
  StrictJsonParser parser(text);
  if (parser.Parse(out)) return true;
  *error = parser.error();
  return false;
}

TEST(ObsDispatchTest, HealthzIsStrictJson) {
  const ObsResponse resp = ObsServer::Dispatch("/healthz");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "application/json");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParsesStrictly(resp.body, &doc, &error)) << error;
  ASSERT_NE(doc.Find("status"), nullptr);
  EXPECT_EQ(doc.Find("status")->str, "ok");
  EXPECT_NE(doc.Find("uptime_seconds"), nullptr);
  EXPECT_NE(doc.Find("profiler_running"), nullptr);
  EXPECT_NE(doc.Find("live_contexts"), nullptr);
}

TEST(ObsDispatchTest, QueryStringsAreIgnored) {
  EXPECT_EQ(ObsServer::Dispatch("/healthz?verbose=1").status, 200);
  EXPECT_EQ(ObsServer::Dispatch("/nope").status, 404);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(
      ParsesStrictly(ObsServer::Dispatch("/nope").body, &doc, &error))
      << error;
}

TEST(ObsDispatchTest, MetricsEndpointPassesPrometheusLint) {
  // Populate all three metric kinds, including a histogram with samples
  // spread over several buckets.
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.GetCounter("obs_test.counter").Add(7);
  registry.GetGauge("obs_test.gauge").Set(-3);
  Histogram& hist = registry.GetHistogram("obs_test.hist");
  for (int i = 0; i < 100; ++i) hist.Observe(1e-5 * (1 + i % 17));

  const ObsResponse resp = ObsServer::Dispatch("/metrics");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.content_type.find("text/plain"), std::string::npos);
  std::vector<std::string> errors;
  EXPECT_TRUE(testing::ValidatePrometheusExposition(resp.body, &errors))
      << (errors.empty() ? std::string() : errors.front());
  EXPECT_NE(resp.body.find("obs_test_counter 7"), std::string::npos);
}

TEST(ObsDispatchTest, StagesEndpointReconcilesWithFinishedRun) {
  ExecutionContext ctx(2);
  ctx.set_morsel_rows(0);
  StageExecutor exec(&ctx);
  ASSERT_TRUE(exec.Run("obs-reconcile-stage", 4,
                       [](size_t t, TaskContext& tc) {
                         tc.records_in = 10;
                         tc.records_out = 5;
                       })
                  .ok());

  const ObsResponse resp = ObsServer::Dispatch("/stages");
  EXPECT_EQ(resp.status, 200);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParsesStrictly(resp.body, &doc, &error)) << error;

  // The live snapshot embeds each context's StageReportsJson() verbatim,
  // so the /stages body must contain the end-of-run dump byte-for-byte.
  EXPECT_NE(resp.body.find(ctx.metrics().StageReportsJson()),
            std::string::npos);

  // And the parsed report must show the finished stage with exact counts.
  const JsonValue* contexts = doc.Find("contexts");
  ASSERT_NE(contexts, nullptr);
  bool found = false;
  for (const JsonValue& context : contexts->array) {
    const JsonValue* reports = context.Find("stage_reports");
    if (reports == nullptr) continue;
    for (const JsonValue& report : reports->array) {
      const JsonValue* name = report.Find("name");
      if (name == nullptr || name->str != "obs-reconcile-stage") continue;
      found = true;
      EXPECT_EQ(report.Find("records_in")->number, 40);
      EXPECT_EQ(report.Find("records_out")->number, 20);
      EXPECT_EQ(report.Find("in_flight")->kind, JsonValue::kBool);
      EXPECT_FALSE(report.Find("in_flight")->boolean);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsDispatchTest, StagesEndpointShowsInFlightStage) {
  ExecutionContext ctx(2);
  ctx.set_morsel_rows(0);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> started{0};

  std::string mid_run_body;
  std::thread runner([&] {
    StageExecutor exec(&ctx);
    EXPECT_TRUE(exec.Run("obs-inflight-stage", 2,
                         [&](size_t t, TaskContext& tc) {
                           tc.records_in = 1;
                           started.fetch_add(1);
                           std::unique_lock<std::mutex> lock(mu);
                           cv.wait(lock, [&] { return release; });
                         })
                    .ok());
  });

  // Wait until at least one task body is actually executing, then snapshot.
  while (started.load() == 0) std::this_thread::yield();
  mid_run_body = ObsServer::Dispatch("/stages").body;
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  runner.join();

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParsesStrictly(mid_run_body, &doc, &error)) << error;
  bool saw_in_flight = false;
  for (const JsonValue& context : doc.Find("contexts")->array) {
    const JsonValue* reports = context.Find("stage_reports");
    if (reports == nullptr) continue;
    for (const JsonValue& report : reports->array) {
      if (report.Find("name")->str != "obs-inflight-stage") continue;
      saw_in_flight = report.Find("in_flight")->boolean;
    }
  }
  EXPECT_TRUE(saw_in_flight)
      << "mid-run snapshot did not show the stage as in-flight: "
      << mid_run_body;

  // After the run the same stage must reconcile as finished.
  const std::string final_reports = ctx.metrics().StageReportsJson();
  EXPECT_NE(final_reports.find("\"name\":\"obs-inflight-stage\""),
            std::string::npos);
  EXPECT_NE(ObsServer::Dispatch("/stages").body.find(final_reports),
            std::string::npos);
}

TEST(ObsDispatchTest, ExplainEndpointRendersOpenSpans) {
  TraceRecorder& trace = TraceRecorder::Instance();
  trace.set_enabled(true);
  trace.Clear();
  {
    ScopedSpan open_span("obs-open-phase", "phase");
    const ObsResponse resp = ObsServer::Dispatch("/explain");
    EXPECT_EQ(resp.status, 200);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(ParsesStrictly(resp.body, &doc, &error)) << error;
    EXPECT_TRUE(doc.Find("enabled")->boolean);
    EXPECT_GE(doc.Find("spans")->number, 1);
    // The open span renders in the EXPLAIN tree before End() was called.
    EXPECT_NE(doc.Find("explain")->str.find("obs-open-phase"),
              std::string::npos);
  }
  trace.Clear();
  trace.set_enabled(false);
}

#ifndef _WIN32
TEST(ObsServerTest, ServesRealHttpRoundTrip) {
  ObsServer& server = ObsServer::Instance();
  ASSERT_TRUE(server.Start(0));  // ephemeral port
  ASSERT_TRUE(server.running());
  const uint16_t port = server.port();
  ASSERT_NE(port, 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char* request = "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_EQ(::send(fd, request, std::strlen(request), 0),
            static_cast<ssize_t>(std::strlen(request)));
  std::string response;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParsesStrictly(response.substr(body_at + 4), &doc, &error))
      << error;
  EXPECT_EQ(doc.Find("status")->str, "ok");

  server.Stop();
  EXPECT_FALSE(server.running());
  // Stop/Start cycle works (fresh ephemeral port).
  ASSERT_TRUE(server.Start(0));
  server.Stop();
}
#endif

/// Enables the quality recorder for one test and restores the disabled,
/// empty state so tests stay order-independent.
struct QualityOn {
  QualityOn() {
    QualityRecorder::Instance().Clear();
    QualityRecorder::Instance().set_enabled(true);
  }
  ~QualityOn() {
    QualityRecorder::Instance().set_enabled(false);
    QualityRecorder::Instance().Clear();
  }
};

TEST(ObsDispatchTest, QualityEndpointIsStrictJson) {
  QualityOn on;
  auto data = GenerateTaxA(1000, 0.1, /*seed=*/17);
  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report =
      system.Clean(&working, {*ParseRule("phi1: FD: zipcode -> city")});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const ObsResponse resp = ObsServer::Dispatch("/quality");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "application/json");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParsesStrictly(resp.body, &doc, &error)) << error;
  EXPECT_TRUE(doc.Find("enabled")->boolean);
  EXPECT_EQ(doc.Find("runs_begun")->number, 1.0);
  ASSERT_EQ(doc.Find("runs")->array.size(), 1u);
  const JsonValue& run = doc.Find("runs")->array[0];
  EXPECT_FALSE(run.Find("in_progress")->boolean);
  EXPECT_GT(run.Find("violations")->number, 0.0);
  EXPECT_GT(run.Find("fixes")->number, 0.0);
  ASSERT_GE(run.Find("rules_breakdown")->array.size(), 1u);
  EXPECT_EQ(run.Find("rules_breakdown")->array[0].Find("rule")->str, "phi1");
  // One run completed: no drift yet.
  EXPECT_EQ(doc.Find("drift")->kind, JsonValue::kNull);

  // The snapshot embeds each run's ToJson() verbatim — the same contract
  // /stages keeps with StageReportsJson().
  QualityRunRecord rec;
  ASSERT_TRUE(QualityRecorder::Instance().LatestRun(&rec));
  EXPECT_NE(resp.body.find(rec.ToJson()), std::string::npos);
}

TEST(ObsDispatchTest, ProfileEndpointServesLatestColumnProfile) {
  QualityOn on;
  // Before any run: the has_profile:false shell, still strict JSON.
  JsonValue empty_doc;
  std::string error;
  ASSERT_TRUE(ParsesStrictly(ObsServer::Dispatch("/profile").body,
                             &empty_doc, &error))
      << error;
  EXPECT_FALSE(empty_doc.Find("has_profile")->boolean);
  EXPECT_EQ(empty_doc.Find("profile")->kind, JsonValue::kNull);

  auto data = GenerateTaxA(1000, 0.1, /*seed=*/19);
  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report =
      system.Clean(&working, {*ParseRule("phi1: FD: zipcode -> city")});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const ObsResponse resp = ObsServer::Dispatch("/profile");
  EXPECT_EQ(resp.status, 200);
  JsonValue doc;
  ASSERT_TRUE(ParsesStrictly(resp.body, &doc, &error)) << error;
  EXPECT_TRUE(doc.Find("has_profile")->boolean);
  const JsonValue* profile = doc.Find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->Find("rows")->number,
            static_cast<double>(data.dirty.num_rows()));
  const JsonValue* columns = profile->Find("columns");
  ASSERT_NE(columns, nullptr);
  EXPECT_EQ(columns->array.size(), data.dirty.schema().num_attributes());
  bool saw_city = false;
  for (const JsonValue& col : columns->array) {
    if (col.Find("name")->str != "city") continue;
    saw_city = true;
    EXPECT_GT(col.Find("distinct")->number, 0.0);
    EXPECT_GE(col.Find("top")->array.size(), 1u);
  }
  EXPECT_TRUE(saw_city);
}

TEST(ObsDispatchTest, ConcurrentQualityScrapesDuringClean) {
  // A scraper thread hammers /quality and /profile while Clean() runs
  // repeatedly on another thread — the mid-run pattern the obs-smoke CI
  // step exercises, and the interleaving the TSan job watches. Every body
  // must parse strictly, cumulative counters must be monotone across
  // scrapes, and the final snapshot must embed the JSONL export's last
  // record byte-identically.
  QualityOn on;
  constexpr int kRuns = 4;

  std::atomic<bool> done{false};
  std::vector<std::string> quality_bodies;
  std::vector<std::string> profile_bodies;
  std::thread scraper([&] {
    while (!done.load()) {
      quality_bodies.push_back(ObsServer::Dispatch("/quality").body);
      profile_bodies.push_back(ObsServer::Dispatch("/profile").body);
      std::this_thread::yield();
    }
  });

  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  for (int i = 0; i < kRuns; ++i) {
    auto data = GenerateTaxA(3000, 0.1, /*seed=*/static_cast<uint64_t>(i));
    ExecutionContext ctx(4);
    BigDansing system(&ctx);
    Table working = data.dirty;
    auto report = system.Clean(&working, {rule});
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  // One last scrape is guaranteed to observe the final state.
  done.store(true);
  scraper.join();
  quality_bodies.push_back(ObsServer::Dispatch("/quality").body);
  profile_bodies.push_back(ObsServer::Dispatch("/profile").body);

  double last_runs_begun = 0.0;
  double last_fix_total = 0.0;
  for (const std::string& body : quality_bodies) {
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(ParsesStrictly(body, &doc, &error)) << error << ": " << body;
    const double runs_begun = doc.Find("runs_begun")->number;
    EXPECT_GE(runs_begun, last_runs_begun) << "runs_begun went backwards";
    last_runs_begun = runs_begun;
    double fix_total = 0.0;
    for (const JsonValue& run : doc.Find("runs")->array) {
      fix_total += run.Find("fixes")->number;
    }
    EXPECT_GE(fix_total, last_fix_total) << "cumulative fixes went backwards";
    last_fix_total = fix_total;
  }
  EXPECT_EQ(last_runs_begun, static_cast<double>(kRuns));
  for (const std::string& body : profile_bodies) {
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(ParsesStrictly(body, &doc, &error)) << error << ": " << body;
  }

  // Final snapshot vs JSONL export: the last exported record appears in
  // the last scrape byte-for-byte.
  const std::string jsonl = QualityRecorder::Instance().ToJsonl();
  const size_t last_newline = jsonl.rfind('\n');
  ASSERT_NE(last_newline, std::string::npos);
  const size_t prev_newline = jsonl.rfind('\n', last_newline - 1);
  const std::string last_record =
      prev_newline == std::string::npos
          ? jsonl.substr(0, last_newline)
          : jsonl.substr(prev_newline + 1, last_newline - prev_newline - 1);
  ASSERT_FALSE(last_record.empty());
  EXPECT_NE(quality_bodies.back().find(last_record), std::string::npos);
}

TEST(ProfilerTest, InternDeduplicatesDescriptors) {
  Profiler& profiler = Profiler::Instance();
  const ActivityDesc* a = profiler.Intern("stage-a", "task");
  const ActivityDesc* b = profiler.Intern("stage-a", "task");
  const ActivityDesc* c = profiler.Intern("stage-a", "morsel");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a->stage, "stage-a");
  EXPECT_EQ(c->kind, "morsel");
}

TEST(ProfilerTest, AttributesSamplesToPublishedStages) {
  Profiler& profiler = Profiler::Instance();
  profiler.ResetSamples();
  profiler.Start(2000.0);

  ExecutionContext ctx(4);
  ctx.set_morsel_rows(64);
  StageExecutor exec(&ctx);
  // ~200ms of attributable busy work split across morsels.
  auto result = exec.RunMorsels<uint64_t>(
      "obs-profiled-stage", 4, [](size_t) { return size_t{4096}; },
      [](size_t t, size_t begin, size_t end, TaskContext& tc) {
        volatile uint64_t sink = 0;
        for (size_t i = begin; i < end; ++i) {
          for (int k = 0; k < 2000; ++k) sink = sink + i * k;
        }
        return static_cast<uint64_t>(sink);
      },
      [](size_t, std::vector<uint64_t>&& pieces) {
        uint64_t total = 0;
        for (uint64_t p : pieces) total += p;
        return total;
      });
  ASSERT_TRUE(result.ok());

  profiler.Stop();
  EXPECT_GT(profiler.TotalSamples(), 0u);
  const std::string folded = profiler.FoldedStacks();
  EXPECT_NE(folded.find("bigdansing;obs-profiled-stage;morsel "),
            std::string::npos)
      << folded;
  profiler.ResetSamples();
}

TEST(ProfilerTest, AttributesSamplesToKernelStages) {
  // The columnar detect kernels publish their own stage descriptors
  // (kernel:encode:*, kernel:block, kernel:iterate|detect|genfix); the
  // profiler must attribute samples to them just like interpreted stages.
  Profiler& profiler = Profiler::Instance();
  profiler.ResetSamples();
  profiler.Start(2000.0);

  ExecutionContext ctx(4);
  ctx.set_kernels_enabled(true);
  RuleEngine engine(&ctx);
  auto data = GenerateTaxA(20000, 0.1, /*seed=*/11);
  auto rule = *ParseRule("phi1: FD: zipcode -> city");
  // Re-run until a sample lands inside a kernel stage (the kernels are
  // fast — that is the point — so one pass may finish between ticks).
  std::string folded;
  for (int attempt = 0; attempt < 10; ++attempt) {
    auto result = engine.Detect(data.dirty, rule);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_NE(result->plan_description.find("[kernel]"), std::string::npos);
    folded = profiler.FoldedStacks();
    if (folded.find("bigdansing;kernel:") != std::string::npos) break;
  }
  profiler.Stop();
  EXPECT_NE(folded.find("bigdansing;kernel:"), std::string::npos) << folded;
  profiler.ResetSamples();
}

TEST(ProfilerTest, ScopedActivityNestsAndRestores) {
  Profiler& profiler = Profiler::Instance();
  const ActivityDesc* outer = profiler.Intern("outer", "task");
  const ActivityDesc* inner = profiler.Intern("inner", "morsel");
  ActivitySlot* slot = ThisThreadActivitySlot();
  EXPECT_EQ(slot->desc.load(), nullptr);
  {
    ScopedActivity a(outer, 0, 10);
    EXPECT_EQ(slot->desc.load(), outer);
    {
      ScopedActivity b(inner, 3, 5);
      EXPECT_EQ(slot->desc.load(), inner);
      EXPECT_EQ(slot->unit_begin.load(), 3u);
      EXPECT_EQ(slot->unit_end.load(), 5u);
    }
    EXPECT_EQ(slot->desc.load(), outer);
    EXPECT_EQ(slot->unit_begin.load(), 0u);
    EXPECT_EQ(slot->unit_end.load(), 10u);
  }
  EXPECT_EQ(slot->desc.load(), nullptr);
}

TEST(ResourceAccountingTest, CountsThreadLocalAllocations) {
  const ThreadAllocCounters before = ThreadAllocations();
  {
    std::vector<std::string> strings;
    for (int i = 0; i < 100; ++i) {
      strings.push_back(std::string(1024, 'x'));
    }
  }
  const ThreadAllocCounters after = ThreadAllocations();
  EXPECT_GE(after.count - before.count, 100u);
  EXPECT_GE(after.bytes - before.bytes, 100u * 1024u);
}

TEST(ResourceAccountingTest, RssIsReadableOnLinux) {
#ifdef __linux__
  EXPECT_GT(CurrentRssBytes(), 0u);
#else
  SUCCEED();
#endif
}

TEST(ResourceAccountingTest, StageReportCarriesAllocAndRss) {
  ExecutionContext ctx(2);
  ctx.set_morsel_rows(0);
  StageExecutor exec(&ctx);
  ASSERT_TRUE(exec.Run("obs-alloc-stage", 2,
                       [](size_t t, TaskContext& tc) {
                         std::vector<std::string> data;
                         for (int i = 0; i < 50; ++i) {
                           data.push_back(std::string(2048, 'y'));
                         }
                         tc.records_in = data.size();
                       })
                  .ok());
  const std::vector<StageReport> reports = ctx.metrics().StageReports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GE(reports[0].allocs, 100u);
  EXPECT_GE(reports[0].alloc_bytes, 2u * 50u * 2048u);
  EXPECT_TRUE(reports[0].finished);
  // The JSON rendering exposes the same fields.
  const std::string json = ctx.metrics().StageReportsJson();
  EXPECT_NE(json.find("\"alloc_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"rss_delta_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"steals\":"), std::string::npos);
  EXPECT_NE(json.find("\"in_flight\":false"), std::string::npos);
}

TEST(NonFiniteJsonTest, BuilderEmitsNullForInfAndNan) {
  JsonObjectBuilder builder;
  builder.Add("pos_inf", std::numeric_limits<double>::infinity());
  builder.Add("neg_inf", -std::numeric_limits<double>::infinity());
  builder.Add("nan", std::nan(""));
  builder.Add("finite", 1.5);
  const std::string json = builder.Build();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParsesStrictly(json, &doc, &error)) << error << ": " << json;
  EXPECT_EQ(doc.Find("pos_inf")->kind, JsonValue::kNull);
  EXPECT_EQ(doc.Find("neg_inf")->kind, JsonValue::kNull);
  EXPECT_EQ(doc.Find("nan")->kind, JsonValue::kNull);
  EXPECT_EQ(doc.Find("finite")->number, 1.5);
}

TEST(NonFiniteJsonTest, StageReportWithNonFiniteTimeStaysStrictJson) {
  // Regression: a pathological busy-seconds measurement (inf/nan) must not
  // corrupt the JSON stage dump ("%.6f" renders inf as "inf").
  Metrics metrics;
  const size_t handle = metrics.BeginStage("obs-nonfinite-stage", 1);
  TaskContext tc;
  tc.records_in = 1;
  metrics.AccumulateTask(handle, tc,
                         std::numeric_limits<double>::infinity());
  metrics.FinishStage(handle, std::nan(""));
  const std::string json = metrics.StageReportsJson();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParsesStrictly(json, &doc, &error)) << error << ": " << json;
  ASSERT_EQ(doc.array.size(), 1u);
  EXPECT_EQ(doc.array[0].Find("busy_seconds")->kind, JsonValue::kNull);
  EXPECT_EQ(doc.array[0].Find("wall_seconds")->kind, JsonValue::kNull);
}

TEST(StageDirectoryTest, TracksLiveContexts) {
  const size_t baseline = StageDirectory::Instance().LiveCount();
  {
    ExecutionContext a(1);
    EXPECT_EQ(StageDirectory::Instance().LiveCount(), baseline + 1);
    {
      ExecutionContext b(1);
      EXPECT_EQ(StageDirectory::Instance().LiveCount(), baseline + 2);
    }
    EXPECT_EQ(StageDirectory::Instance().LiveCount(), baseline + 1);
  }
  EXPECT_EQ(StageDirectory::Instance().LiveCount(), baseline);
}

}  // namespace
}  // namespace bigdansing
