#include "rules/similarity.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/random.h"

namespace bigdansing {
namespace {

TEST(Levenshtein, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "xy"), 2u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(Levenshtein, SimilarityRange) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  double s = LevenshteinSimilarity("john smith", "jon smith");
  EXPECT_GT(s, 0.8);
  EXPECT_LT(s, 1.0);
}

class LevenshteinProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LevenshteinProperty, MetricAxiomsOnRandomStrings) {
  Random rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    std::string a = rng.NextString(static_cast<int>(rng.NextBounded(12)));
    std::string b = rng.NextString(static_cast<int>(rng.NextBounded(12)));
    std::string c = rng.NextString(static_cast<int>(rng.NextBounded(12)));
    size_t ab = LevenshteinDistance(a, b);
    // Symmetry.
    EXPECT_EQ(ab, LevenshteinDistance(b, a));
    // Identity.
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);
    EXPECT_EQ(ab == 0, a == b);
    // Bounds: |len gap| <= d <= max len.
    size_t gap = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    EXPECT_GE(ab, gap);
    EXPECT_LE(ab, std::max(a.size(), b.size()));
    // Triangle inequality.
    EXPECT_LE(ab, LevenshteinDistance(a, c) + LevenshteinDistance(c, b));
  }
}

TEST_P(LevenshteinProperty, SingleEditDistanceIsOne) {
  Random rng(GetParam() + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    std::string a = rng.NextString(8);
    std::string b = a;
    size_t pos = rng.NextBounded(b.size());
    switch (trial % 3) {
      case 0:
        b[pos] = b[pos] == 'z' ? 'a' : static_cast<char>(b[pos] + 1);
        break;
      case 1:
        b.erase(pos, 1);
        break;
      default:
        b.insert(pos, 1, '!');
        break;
    }
    EXPECT_EQ(LevenshteinDistance(a, b), 1u) << a << " vs " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinProperty,
                         ::testing::Values(1, 2, 3, 4));

TEST(Jaccard, TrigramSimilarity) {
  EXPECT_DOUBLE_EQ(JaccardTrigramSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaccardTrigramSimilarity("abcdef", "abcdef"), 1.0);
  EXPECT_EQ(JaccardTrigramSimilarity("abcdef", "uvwxyz"), 0.0);
  double s = JaccardTrigramSimilarity("bigdansing", "bigdansin");
  EXPECT_GT(s, 0.5);
  // Short strings compare as whole tokens.
  EXPECT_DOUBLE_EQ(JaccardTrigramSimilarity("ab", "ab"), 1.0);
  EXPECT_DOUBLE_EQ(JaccardTrigramSimilarity("ab", "cd"), 0.0);
}

TEST(IsSimilar, ThresholdSemantics) {
  EXPECT_TRUE(IsSimilar("john", "john", 1.0));
  EXPECT_TRUE(IsSimilar("john smith", "jon smith", 0.8));
  EXPECT_FALSE(IsSimilar("john", "mary", 0.8));
  // The length pre-filter must not reject borderline matches.
  EXPECT_TRUE(IsSimilar("abcdefghij", "abcdefgh", 0.8));
  // But must reject impossible length gaps quickly (still correct).
  EXPECT_FALSE(IsSimilar("ab", "abcdefghijklmnop", 0.8));
}

TEST(IsSimilar, PreFilterAgreesWithFullComputation) {
  Random rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    std::string a = rng.NextString(static_cast<int>(rng.NextBounded(15)));
    std::string b = rng.NextString(static_cast<int>(rng.NextBounded(15)));
    for (double threshold : {0.5, 0.8, 0.95}) {
      EXPECT_EQ(IsSimilar(a, b, threshold),
                LevenshteinSimilarity(a, b) >= threshold)
          << a << " " << b << " @" << threshold;
    }
  }
}

}  // namespace
}  // namespace bigdansing
