// Streaming cleanse sessions (BigDansing::OpenStream): the incremental
// violation index survives append/retract round-trips bit-identically,
// batched ingestion converges byte-identical to one-shot Clean() — with
// and without injected faults — and the backpressure / observability
// contracts hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/bigdansing.h"
#include "core/stream_session.h"
#include "data/csv.h"
#include "datagen/datagen.h"
#include "obs/stream_stats.h"
#include "rules/parser.h"
#include "strict_json_test_util.h"

namespace bigdansing {
namespace {

/// Canonical byte rendering of a table (row ids + every cell) for
/// bit-identical comparisons across ingestion strategies.
std::string Fingerprint(const Table& table) {
  std::string out;
  for (const Row& row : table.rows()) {
    out += std::to_string(row.id());
    for (size_t c = 0; c < row.size(); ++c) {
      out += '|';
      out += row.value(c).ToString();
    }
    out += "\n";
  }
  return out;
}

std::vector<RulePtr> TaxRules() {
  return {*ParseRule("phi1: FD: zipcode -> city"),
          *ParseRule("phi6: FD: zipcode -> state")};
}

/// RAII guard mirroring fault_test's: one test's faults never leak out.
struct InjectorGuard {
  ~InjectorGuard() {
    FaultInjector::Instance().Clear();
    FaultInjector::Instance().set_site_tracking(false);
    FaultInjector::Instance().ClearSeenSites();
  }
};

/// Ingests `data` into an empty table through a stream session in
/// `batches` micro-batches, flushes, and returns the repaired bytes.
std::string StreamedFingerprint(const Table& dirty,
                                const std::vector<RulePtr>& rules,
                                size_t batches, StreamOptions options) {
  Table streamed(dirty.schema());
  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  auto session = system.OpenStream(&streamed, rules, options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  if (!session.ok()) return "";

  const auto& rows = dirty.rows();
  const size_t per = (rows.size() + batches - 1) / batches;
  for (size_t begin = 0; begin < rows.size(); begin += per) {
    const size_t end = std::min(begin + per, rows.size());
    std::vector<Row> chunk(rows.begin() + begin, rows.begin() + end);
    EXPECT_TRUE((*session)->Append(std::move(chunk)).ok());
  }
  auto flush = (*session)->Flush();
  EXPECT_TRUE(flush.ok()) << flush.status().ToString();
  if (flush.ok()) EXPECT_TRUE(flush->converged);
  EXPECT_TRUE((*session)->Close().ok());
  return Fingerprint(streamed);
}

TEST(Stream, BatchedIngestConvergesByteIdenticalToClean) {
  auto data = GenerateTaxA(2000, 0.1, /*seed=*/51);
  auto rules = TaxRules();

  // Reference: one-shot Clean() over the whole dirty instance.
  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report = system.Clean(&working, rules);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->converged);
  const std::string reference = Fingerprint(working);

  // The same rows ingested in K micro-batches must converge to the exact
  // same bytes, for several K including K=1.
  for (size_t batches : {size_t{1}, size_t{4}, size_t{13}}) {
    StreamOptions options;
    options.batch_rows = 100000;  // One Append = one batch.
    EXPECT_EQ(StreamedFingerprint(data.dirty, rules, batches, options),
              reference)
        << "ingesting in " << batches << " batches diverged from Clean()";
  }
}

TEST(Stream, ConvergesByteIdenticalUnderInjectedFaults) {
  InjectorGuard guard;
  auto data = GenerateTaxA(600, 0.1, /*seed=*/52);
  auto rules = TaxRules();

  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto report = system.Clean(&working, rules);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string reference = Fingerprint(working);

  // Transient faults everywhere, deep retry budget: the streamed run must
  // still land on the reference bytes.
  FaultInjector& injector = FaultInjector::Instance();
  ASSERT_TRUE(injector.Configure("stage=*,kind=throw,prob=0.2", 77).ok());
  StreamOptions options;
  FaultPolicy policy;
  policy.max_attempts = 10;
  policy.stage_retry_budget = 4096;
  options.clean.fault_policy = policy;
  options.batch_rows = 100000;
  EXPECT_EQ(StreamedFingerprint(data.dirty, rules, 5, options), reference);
  EXPECT_GT(injector.injected_total(), 0u)
      << "the fault schedule never fired; the test proved nothing";
}

TEST(Stream, AppendThenRetractLeavesIndexBitIdentical) {
  // A clean instance: no violations, so windows never repair and the index
  // round-trip is isolated from repair-driven re-keying.
  auto data = GenerateTaxA(1500, 0.0, /*seed=*/53);
  auto rules = TaxRules();
  ExecutionContext ctx(4);
  BigDansing system(&ctx);

  Table working = data.clean;
  auto session = system.OpenStream(&working, rules, StreamOptions{});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto baseline = (*session)->IndexFingerprints();
  ASSERT_EQ(baseline.size(), rules.size());

  // Fresh build over an equal table reproduces the fingerprints exactly.
  Table fresh_table = data.clean;
  auto fresh = system.OpenStream(&fresh_table, rules, StreamOptions{});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->IndexFingerprints(), baseline);

  // Append duplicates of existing rows (same blocking keys, no new
  // violations), land them, then retract: the index must return to the
  // baseline bit-exactly even though pools may have grown meanwhile.
  std::vector<Row> extra;
  std::vector<RowId> extra_ids;
  RowId next_id = static_cast<RowId>(data.clean.num_rows()) + 1000;
  for (size_t i = 0; i < 50; ++i) {
    Row copy = data.clean.rows()[i];
    copy.set_id(next_id);
    extra_ids.push_back(next_id);
    ++next_id;
    extra.push_back(std::move(copy));
  }
  ASSERT_TRUE((*session)->Append(std::move(extra)).ok());
  auto flush = (*session)->Flush();
  ASSERT_TRUE(flush.ok()) << flush.status().ToString();
  EXPECT_NE((*session)->IndexFingerprints(), baseline)
      << "landing 50 rows must change block membership";

  ASSERT_TRUE((*session)->Retract(extra_ids).ok());
  EXPECT_EQ((*session)->IndexFingerprints(), baseline);
  EXPECT_EQ(working.num_rows(), data.clean.num_rows());

  // Retracting the same ids again is a no-op, not an error.
  ASSERT_TRUE((*session)->Retract(extra_ids).ok());
  EXPECT_EQ((*session)->IndexFingerprints(), baseline);
}

TEST(Stream, RetractionRemovesViolationsBeforeTheyLand) {
  auto table = ReadCsvString(
      "zipcode,city\n10001,ny\n10001,ny\n20001,dc\n20001,dc\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  auto rule = *ParseRule("f: FD: zipcode -> city");
  ExecutionContext ctx(2);
  BigDansing system(&ctx);
  auto session = system.OpenStream(&*table, {rule}, StreamOptions{});
  ASSERT_TRUE(session.ok());
  const std::string before = Fingerprint(*table);

  // A conflicting row enqueued but retracted before any Poll: it must
  // never reach the table and the flush must find nothing to repair.
  ASSERT_TRUE(
      (*session)
          ->Append({Row(99, {Value::Parse("10001"), Value::Parse("zz")})})
          .ok());
  ASSERT_TRUE((*session)->Retract({99}).ok());
  auto flush = (*session)->Flush();
  ASSERT_TRUE(flush.ok());
  EXPECT_TRUE(flush->converged);
  EXPECT_EQ(flush->total_applied_fixes, 0u);
  EXPECT_EQ(Fingerprint(*table), before);

  // The same conflicting row landed, then retracted: its violation leaves
  // with it, and re-verifying its former block repairs nothing.
  ASSERT_TRUE(
      (*session)
          ->Append({Row(99, {Value::Parse("10001"), Value::Parse("zz")})})
          .ok());
  auto poll = (*session)->Poll();
  ASSERT_TRUE(poll.ok());
  ASSERT_TRUE((*session)->Retract({99}).ok());
  auto verify = (*session)->Flush();
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify->converged);
  EXPECT_EQ((*table).num_rows(), 4u);
}

TEST(Stream, NonBlockingBackpressureRejectsWholeAppend) {
  auto data = GenerateTaxA(200, 0.0, /*seed=*/54);
  Table streamed(data.clean.schema());
  ExecutionContext ctx(2);
  BigDansing system(&ctx);
  StreamOptions options;
  options.batch_rows = 10;
  options.max_inflight_batches = 2;
  options.block_on_backpressure = false;
  auto session = system.OpenStream(&streamed, TaxRules(), options);
  ASSERT_TRUE(session.ok());

  std::vector<Row> first(data.clean.rows().begin(),
                         data.clean.rows().begin() + 20);
  ASSERT_TRUE((*session)->Append(std::move(first)).ok());
  EXPECT_EQ((*session)->pending_batches(), 2u);

  // The queue is at the bound: the next Append must be rejected in full —
  // nothing partially enqueued — with ResourceExhausted.
  std::vector<Row> second(data.clean.rows().begin() + 20,
                          data.clean.rows().begin() + 30);
  auto rejected = (*session)->Append(std::move(second));
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted)
      << rejected.ToString();
  EXPECT_EQ((*session)->pending_batches(), 2u);
  EXPECT_GE((*session)->stats().backpressure_rejections, 1u);

  // Draining one window frees a slot and the retry succeeds.
  ASSERT_TRUE((*session)->Poll().ok());
  std::vector<Row> retry(data.clean.rows().begin() + 20,
                         data.clean.rows().begin() + 30);
  EXPECT_TRUE((*session)->Append(std::move(retry)).ok());

  // Blocking mode instead drains inline: the same overload never fails.
  Table blocking_table(data.clean.schema());
  options.block_on_backpressure = true;
  auto blocking = system.OpenStream(&blocking_table, TaxRules(), options);
  ASSERT_TRUE(blocking.ok());
  std::vector<Row> all(data.clean.rows().begin(), data.clean.rows().end());
  EXPECT_TRUE((*blocking)->Append(std::move(all)).ok());
  EXPECT_LE((*blocking)->pending_batches(), options.max_inflight_batches);
  EXPECT_GE((*blocking)->stats().backpressure_waits, 1u);
}

TEST(Stream, DuplicateAndMalformedAppendsAreRejected) {
  auto table = ReadCsvString("a,b\n1,2\n", CsvOptions{});
  ASSERT_TRUE(table.ok());
  ExecutionContext ctx(2);
  BigDansing system(&ctx);
  auto session =
      system.OpenStream(&*table, {*ParseRule("f: FD: a -> b")}, StreamOptions{});
  ASSERT_TRUE(session.ok());

  // Width mismatch.
  EXPECT_EQ((*session)->Append({Row(-1, {Value::Parse("x")})}).code(),
            StatusCode::kInvalidArgument);
  // Id collision with a live row (the CSV row has id 0).
  EXPECT_EQ(
      (*session)
          ->Append({Row(0, {Value::Parse("1"), Value::Parse("2")})})
          .code(),
      StatusCode::kInvalidArgument);

  // After Close, every mutation fails.
  ASSERT_TRUE((*session)->Close().ok());
  EXPECT_FALSE((*session)->Append({}).ok());
  EXPECT_FALSE((*session)->Retract({0}).ok());
  EXPECT_FALSE((*session)->Poll().ok());
}

TEST(Stream, StatsAndStreamsJsonTrackTheSession) {
  StreamDirectory::Instance().Clear();
  auto data = GenerateTaxA(800, 0.1, /*seed=*/55);
  Table streamed(data.dirty.schema());
  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  StreamOptions options;
  options.session_name = "stream-stats-test";
  options.batch_rows = 200;
  auto session = system.OpenStream(&streamed, TaxRules(), options);
  ASSERT_TRUE(session.ok());

  // Scrape /streams JSON concurrently with ingestion: the directory is the
  // thread-safe boundary, so this is the TSan-relevant interleaving.
  std::atomic<bool> done{false};
  std::atomic<size_t> scrapes{0};
  std::thread scraper([&] {
    while (!done.load()) {
      std::string json = StreamDirectory::Instance().StreamsJson();
      if (!json.empty()) ++scrapes;
    }
  });
  std::vector<Row> all(data.dirty.rows().begin(), data.dirty.rows().end());
  ASSERT_TRUE((*session)->Append(std::move(all)).ok());
  auto flush = (*session)->Flush();
  done.store(true);
  scraper.join();
  ASSERT_TRUE(flush.ok()) << flush.status().ToString();
  EXPECT_GT(scrapes.load(), 0u);

  auto stats = (*session)->stats();
  EXPECT_EQ(stats.name, "stream-stats-test");
  EXPECT_TRUE(stats.open);
  EXPECT_EQ(stats.rows, streamed.num_rows());
  EXPECT_EQ(stats.appended_rows, 800u);
  EXPECT_EQ(stats.batches_enqueued, 4u);
  EXPECT_EQ(stats.batches_processed, stats.batches_enqueued);
  EXPECT_EQ(stats.pending_batches, 0u);
  EXPECT_GT(stats.violations_found, 0u);
  EXPECT_GT(stats.fixes_applied, 0u);
  EXPECT_GT(stats.index_blocks, 0u);
  EXPECT_EQ(stats.index_rows, 800u * 2)  // Two blocked rules.
      << "every live row should sit in one block per rule";
  EXPECT_GT(stats.pool_values, 0u);
  EXPECT_GE(stats.pool_growths, 1u);

  ASSERT_TRUE((*session)->Close().ok());
  std::string json = StreamDirectory::Instance().StreamsJson();
  StrictJsonParser parser(json);
  JsonValue root;
  ASSERT_TRUE(parser.Parse(&root)) << parser.error() << "\n" << json;
  const JsonValue* records = root.Find("records");
  ASSERT_NE(records, nullptr);
  bool found = false;
  for (const JsonValue& record : records->array) {
    const JsonValue* name = record.Find("name");
    if (name == nullptr || name->str != "stream-stats-test") continue;
    found = true;
    EXPECT_FALSE(record.Find("open")->boolean);
    EXPECT_EQ(record.Find("appended_rows")->number, 800.0);
    EXPECT_GT(record.Find("batches_processed")->number, 0.0);
    EXPECT_GT(record.Find("fixes_applied")->number, 0.0);
  }
  EXPECT_TRUE(found) << json;
  StreamDirectory::Instance().Clear();
}

TEST(Stream, PreloadedTableIsCleanedByFlushAlone) {
  // OpenStream over an already-dirty table: Init marks every existing row
  // dirty, so Flush with no appends must reach Clean()'s fix point.
  auto data = GenerateTaxA(1000, 0.1, /*seed=*/56);
  auto rules = TaxRules();

  ExecutionContext ref_ctx(4);
  BigDansing ref_system(&ref_ctx);
  Table reference = data.dirty;
  auto report = ref_system.Clean(&reference, rules);
  ASSERT_TRUE(report.ok());

  ExecutionContext ctx(4);
  BigDansing system(&ctx);
  Table working = data.dirty;
  auto session = system.OpenStream(&working, rules, StreamOptions{});
  ASSERT_TRUE(session.ok());
  auto flush = (*session)->Flush();
  ASSERT_TRUE(flush.ok()) << flush.status().ToString();
  EXPECT_TRUE(flush->converged);
  EXPECT_EQ(Fingerprint(working), Fingerprint(reference));
}

}  // namespace
}  // namespace bigdansing
