#include "core/multi_dc.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "data/csv.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

/// The Appendix E scenario: a Local employee table L (with manager links)
/// and a Global table G. Rule c3: an employee t1 who manages someone (t2's
/// MID = t1's LID) must appear in G as a manager in their city — a triple
/// (t1, t2, t3) with matching city but differing names and role "M" on t3
/// is a violation witness (simplified from the paper's c3 to keep the
/// fixture readable; the predicate structure is identical).
Table LocalTable() {
  const char* csv =
      "LID,FN,LN,City,MID\n"
      "1,alice,smith,NYC,0\n"   // Manager of 2 and 3.
      "2,bob,jones,NYC,1\n"
      "3,carol,white,NYC,1\n"
      "4,dan,black,SF,0\n";     // Manages nobody.
  return *ReadCsvString(csv, CsvOptions{});
}

Table GlobalTable() {
  const char* csv =
      "GID,FN,LN,Role,City\n"
      "10,eve,green,M,NYC\n"    // Manager in NYC, different name -> witness.
      "11,alice,smith,M,NYC\n"  // Same name as alice -> no violation.
      "12,frank,gray,M,SF\n"    // Manager in SF (no managing pair there).
      "13,gina,blue,E,NYC\n";   // Not a manager.
  return *ReadCsvString(csv, CsvOptions{});
}

constexpr const char* kC3 =
    "c3: DC3: t1.LID != t2.LID & t1.LID = t2.MID & t1.FN != t3.FN & "
    "t1.LN != t3.LN & t1.City = t3.City & t3.Role = \"M\"";

TEST(ThreeTupleDc, ParserAcceptsC3) {
  auto rule = ParseThreeTupleDc(kC3);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ((*rule)->name(), "c3");
  EXPECT_EQ((*rule)->predicates().size(), 6u);
}

TEST(ThreeTupleDc, ParserRejectsBadForms) {
  EXPECT_FALSE(ParseThreeTupleDc("DC: t1.a = t2.a").ok());  // Wrong keyword.
  EXPECT_FALSE(
      ParseThreeTupleDc("DC3: t1.a = t2.a & t1.b != t2.b").ok());  // No t3.
  EXPECT_FALSE(ParseThreeTupleDc("DC3: ").ok());
}

TEST(ThreeTupleDc, TwoTupleParserRejectsT3) {
  EXPECT_FALSE(ParseRule("DC: t1.a = t3.a & t1.b != t2.b").ok());
}

TEST(ThreeTupleDc, BindRequiresLinks) {
  // No t3 equality link.
  auto no_third = ParseThreeTupleDc("DC3: t1.a = t2.a & t1.b != t3.b");
  ASSERT_TRUE(no_third.ok());
  Schema s({"a", "b"});
  EXPECT_FALSE((*no_third)->Bind(s, s).ok());
  // No pair link.
  auto no_pair = ParseThreeTupleDc("DC3: t1.a != t2.a & t1.b = t3.b");
  ASSERT_TRUE(no_pair.ok());
  EXPECT_FALSE((*no_pair)->Bind(s, s).ok());
  // Unknown attribute.
  auto bad_attr = ParseThreeTupleDc("DC3: t1.a = t2.a & t1.zz = t3.b");
  ASSERT_TRUE(bad_attr.ok());
  EXPECT_FALSE((*bad_attr)->Bind(s, s).ok());
}

TEST(ThreeTupleDc, DetectsAppendixEViolations) {
  Table local = LocalTable();
  Table global = GlobalTable();
  auto rule = ParseThreeTupleDc(kC3);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ExecutionContext ctx(2);
  uint64_t probes = 0;
  auto violations = DetectThreeTuple(&ctx, local, global, *rule, &probes);
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();

  // Managing pairs in L: (alice, bob) and (alice, carol). NYC managers in
  // G with a name differing from alice: eve. So two violations:
  // (alice, bob, eve) and (alice, carol, eve).
  EXPECT_EQ(violations->size(), 2u);
  for (const auto& vf : *violations) {
    EXPECT_EQ(vf.violation.rule_name, "c3");
    EXPECT_FALSE(vf.fixes.empty());
  }
  // The t3 scope (Role = "M") and the city link keep probing tiny.
  EXPECT_LE(probes, 8u);
}

TEST(ThreeTupleDc, MatchesBruteForceOnRandomData) {
  // Random tables; the bushy plan must agree with triple-nested loops.
  Random rng(61);
  Table pair_table(Schema({"id", "link", "x", "city"}));
  for (int64_t i = 0; i < 60; ++i) {
    pair_table.AppendRow({Value(i), Value(static_cast<int64_t>(rng.NextBounded(60))),
                          Value(static_cast<int64_t>(rng.NextBounded(5))),
                          Value("c" + std::to_string(rng.NextBounded(4)))});
  }
  Table third_table(Schema({"gid", "city", "y"}));
  for (int64_t i = 0; i < 40; ++i) {
    third_table.AppendRow({Value(i),
                           Value("c" + std::to_string(rng.NextBounded(4))),
                           Value(static_cast<int64_t>(rng.NextBounded(5)))});
  }
  auto rule = ParseThreeTupleDc(
      "r: DC3: t1.id = t2.link & t1.x > t2.x & t1.city = t3.city & "
      "t1.x <= t3.y");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();

  ExecutionContext ctx(3);
  auto violations = DetectThreeTuple(&ctx, pair_table, third_table, *rule);
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();

  // Brute force.
  size_t expected = 0;
  for (const Row& t1 : pair_table.rows()) {
    for (const Row& t2 : pair_table.rows()) {
      if (t1.id() == t2.id()) continue;
      if (t1.value(0) != t2.value(1)) continue;
      if (!(t1.value(2) > t2.value(2))) continue;
      for (const Row& t3 : third_table.rows()) {
        if (t1.value(3) != t3.value(1)) continue;
        if (!(t1.value(2) <= t3.value(2))) continue;
        ++expected;
      }
    }
  }
  EXPECT_EQ(violations->size(), expected);
  EXPECT_GT(expected, 0u);  // The fixture must actually exercise the path.
}

TEST(ThreeTupleDc, GenFixNegatesEachPredicate) {
  Table local = LocalTable();
  Table global = GlobalTable();
  auto rule = ParseThreeTupleDc(kC3);
  ASSERT_TRUE(rule.ok());
  ExecutionContext ctx(2);
  auto violations = DetectThreeTuple(&ctx, local, global, *rule);
  ASSERT_TRUE(violations.ok());
  ASSERT_FALSE(violations->empty());
  const auto& vf = (*violations)[0];
  ASSERT_EQ(vf.fixes.size(), 6u);
  // First predicate t1.LID != t2.LID negates to equality.
  EXPECT_EQ(vf.fixes[0].op, FixOp::kEq);
  // Last predicate t3.Role = "M" negates to != against the constant.
  EXPECT_EQ(vf.fixes[5].op, FixOp::kNeq);
  ASSERT_FALSE(vf.fixes[5].right.is_cell);
  EXPECT_EQ(vf.fixes[5].right.constant, Value("M"));
}

}  // namespace
}  // namespace bigdansing
