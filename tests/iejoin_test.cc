#include "core/iejoin.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/random.h"

namespace bigdansing {
namespace {

std::vector<Row> RandomRows(size_t n, size_t cols, uint64_t seed,
                            double null_rate = 0.0) {
  Random rng(seed);
  std::vector<Row> rows;
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> values;
    for (size_t c = 0; c < cols; ++c) {
      if (rng.NextBool(null_rate)) {
        values.push_back(Value::Null());
      } else {
        values.push_back(Value(static_cast<int64_t>(rng.NextBounded(40))));
      }
    }
    rows.emplace_back(static_cast<RowId>(i), std::move(values));
  }
  return rows;
}

bool EvalCondition(const Row& a, const Row& b, const OrderingCondition& c) {
  const Value& l = a.value(c.left_column);
  const Value& r = b.value(c.right_column);
  if (l.is_null() || r.is_null()) return false;
  switch (c.op) {
    case CmpOp::kLt:
      return l < r;
    case CmpOp::kGt:
      return l > r;
    case CmpOp::kLeq:
      return l <= r;
    case CmpOp::kGeq:
      return l >= r;
    default:
      return false;
  }
}

std::set<std::pair<RowId, RowId>> BruteForce(
    const std::vector<Row>& rows,
    const std::vector<OrderingCondition>& conditions) {
  std::set<std::pair<RowId, RowId>> out;
  for (const auto& a : rows) {
    for (const auto& b : rows) {
      if (a.id() == b.id()) continue;
      bool all = true;
      for (const auto& c : conditions) all = all && EvalCondition(a, b, c);
      if (all) out.insert({a.id(), b.id()});
    }
  }
  return out;
}

std::set<std::pair<RowId, RowId>> AsSet(const std::vector<RowPair>& pairs) {
  std::set<std::pair<RowId, RowId>> out;
  for (const auto& p : pairs) out.insert({p.left.id(), p.right.id()});
  return out;
}

OrderingCondition Cond(size_t left, CmpOp op, size_t right) {
  OrderingCondition c;
  c.left_column = left;
  c.op = op;
  c.right_column = right;
  return c;
}

class IEJoinProperty
    : public ::testing::TestWithParam<std::tuple<CmpOp, CmpOp, double>> {};

TEST_P(IEJoinProperty, MatchesBruteForce) {
  auto [op1, op2, null_rate] = GetParam();
  std::vector<Row> rows = RandomRows(250, 3, 19, null_rate);
  std::vector<OrderingCondition> conditions = {Cond(0, op1, 0),
                                               Cond(1, op2, 2)};
  ExecutionContext ctx(2);
  IEJoinStats stats;
  auto pairs = IEJoin(&ctx, rows, conditions, &stats);
  EXPECT_EQ(AsSet(pairs), BruteForce(rows, conditions));
  EXPECT_EQ(stats.result_pairs, pairs.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, IEJoinProperty,
    ::testing::Combine(
        ::testing::Values(CmpOp::kLt, CmpOp::kGt, CmpOp::kLeq, CmpOp::kGeq),
        ::testing::Values(CmpOp::kLt, CmpOp::kGt, CmpOp::kLeq, CmpOp::kGeq),
        ::testing::Values(0.0, 0.15)));

TEST(IEJoin, ResidualThirdCondition) {
  std::vector<Row> rows = RandomRows(150, 3, 29);
  std::vector<OrderingCondition> conditions = {
      Cond(0, CmpOp::kGt, 0), Cond(1, CmpOp::kLt, 1), Cond(2, CmpOp::kLeq, 2)};
  ExecutionContext ctx(2);
  auto pairs = IEJoin(&ctx, rows, conditions);
  EXPECT_EQ(AsSet(pairs), BruteForce(rows, conditions));
}

TEST(IEJoin, SingleConditionNotApplicable) {
  EXPECT_FALSE(IEJoinApplicable({Cond(0, CmpOp::kLt, 0)}));
  EXPECT_TRUE(IEJoinApplicable({Cond(0, CmpOp::kLt, 0), Cond(1, CmpOp::kGt, 1)}));
  ExecutionContext ctx(1);
  std::vector<Row> rows = RandomRows(10, 2, 3);
  EXPECT_TRUE(IEJoin(&ctx, rows, {Cond(0, CmpOp::kLt, 0)}).empty());
}

TEST(IEJoin, EmptyAndDegenerateInputs) {
  ExecutionContext ctx(1);
  std::vector<OrderingCondition> conditions = {Cond(0, CmpOp::kLt, 0),
                                               Cond(1, CmpOp::kGt, 1)};
  EXPECT_TRUE(IEJoin(&ctx, {}, conditions).empty());
  // One row cannot pair with itself.
  std::vector<Row> one = RandomRows(1, 2, 5);
  EXPECT_TRUE(IEJoin(&ctx, one, conditions).empty());
  // All-null column joins nothing.
  std::vector<Row> nulls;
  for (int i = 0; i < 10; ++i) {
    nulls.emplace_back(i, std::vector<Value>{Value::Null(), Value::Null()});
  }
  EXPECT_TRUE(IEJoin(&ctx, nulls, conditions).empty());
}

TEST(IEJoin, HeavyDuplicatesMatchBruteForce) {
  // Many ties on both join attributes stress the boundary logic.
  std::vector<Row> rows;
  for (int64_t i = 0; i < 80; ++i) {
    rows.emplace_back(i, std::vector<Value>{Value(i % 4), Value(i % 3)});
  }
  for (CmpOp op1 : {CmpOp::kLeq, CmpOp::kGeq}) {
    for (CmpOp op2 : {CmpOp::kLeq, CmpOp::kGeq}) {
      std::vector<OrderingCondition> conditions = {Cond(0, op1, 0),
                                                   Cond(1, op2, 1)};
      ExecutionContext ctx(2);
      auto pairs = IEJoin(&ctx, rows, conditions);
      EXPECT_EQ(AsSet(pairs), BruteForce(rows, conditions))
          << CmpOpName(op1) << " " << CmpOpName(op2);
    }
  }
}

TEST(IEJoin, MonotoneDataProducesNoPairsCheaply) {
  // Clean-TaxB-shaped data: the DC's conditions are jointly unsatisfiable.
  std::vector<Row> rows;
  for (int64_t i = 0; i < 20000; ++i) {
    rows.emplace_back(i, std::vector<Value>{Value(i), Value(i * 2)});
  }
  std::vector<OrderingCondition> conditions = {Cond(0, CmpOp::kGt, 0),
                                               Cond(1, CmpOp::kLt, 1)};
  ExecutionContext ctx(2);
  IEJoinStats stats;
  auto pairs = IEJoin(&ctx, rows, conditions, &stats);
  EXPECT_TRUE(pairs.empty());
  // Word-skipping keeps probing near-linear, far below n²/64 words.
  EXPECT_LT(stats.bitmap_probes, 20000u * 20000u / 64 / 8);
}

}  // namespace
}  // namespace bigdansing
