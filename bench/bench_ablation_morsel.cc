// Ablation: morsel-driven scheduling vs partition-granularity tasks on a
// skewed workload.
//
// The input is deliberately skewed: one partition holds ~100x the rows of
// every other partition. The same per-row pipeline runs two ways:
//
//  - partition: BD_MORSEL_ROWS=0 semantics — one task per partition, so
//    the heavy partition is one indivisible task pinned to one worker
//    slot and the stage's simulated cluster wall time degenerates to that
//    slot's busy time (Amdahl on the straggler).
//  - morsel: the default scheduler — the fused pass is cut into row-range
//    morsels that spread over all worker slots via work stealing, so the
//    heavy partition's rows land evenly and the simulated wall time
//    approaches total_busy / workers.
//
// Both paths must produce bit-identical output (morsels commit in
// deterministic row order); the bench verifies that and reports the
// simulated-wall speedup, which is the ablation's figure of merit.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dataflow/dataset.h"

namespace bigdansing {
namespace {

using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

/// Deterministic per-row work: a short avalanche loop, heavy enough that
/// scheduling (not allocation) dominates the stage's busy time.
uint64_t BurnHash(uint64_t x) {
  uint64_t h = x * 0x9E3779B97F4A7C15ULL + 1;
  for (int i = 0; i < 256; ++i) {
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
  }
  return h;
}

/// One heavy partition of `heavy` rows plus `small_parts` partitions of
/// `heavy / 100` rows each.
std::vector<std::vector<uint64_t>> MakeSkewedInput(size_t heavy,
                                                   size_t small_parts) {
  std::vector<std::vector<uint64_t>> parts(1 + small_parts);
  uint64_t next = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    const size_t n = p == 0 ? heavy : std::max<size_t>(1, heavy / 100);
    parts[p].reserve(n);
    for (size_t i = 0; i < n; ++i) parts[p].push_back(next++);
  }
  return parts;
}

void Run() {
  const size_t kWorkers = 8;
  const size_t heavy_rows = ScaledRows(131072);
  const size_t kSmallParts = 15;
  const auto input = MakeSkewedInput(heavy_rows, kSmallParts);
  size_t total_rows = 0;
  for (const auto& p : input) total_rows += p.size();

  auto pipeline = [](ExecutionContext* ctx,
                     const std::vector<std::vector<uint64_t>>& parts) {
    return Dataset<uint64_t>(ctx, parts)
        .Map([](const uint64_t& x) { return BurnHash(x); }, "burn")
        .Filter([](const uint64_t& x) { return (x & 7) != 0; }, "thin")
        .Collect();
  };

  // --- Partition granularity: the pre-morsel engine. ---
  ExecutionContext part_ctx(kWorkers);
  part_ctx.set_morsel_rows(0);
  std::vector<uint64_t> part_result;
  double part_wall = TimeSeconds([&] { part_result = pipeline(&part_ctx, input); });
  const double part_sim = part_ctx.metrics().SimulatedWallSeconds();

  // --- Morsel granularity: same pipeline. The morsel size is pinned (not
  // the L2-sized default) so the heavy partition still splits into many
  // units at the small BD_SCALE values CI uses. ---
  ExecutionContext morsel_ctx(kWorkers);
  morsel_ctx.set_morsel_rows(512);
  std::vector<uint64_t> morsel_result;
  double morsel_wall =
      TimeSeconds([&] { morsel_result = pipeline(&morsel_ctx, input); });
  const double morsel_sim = morsel_ctx.metrics().SimulatedWallSeconds();

  const bool identical = part_result == morsel_result;
  const double speedup = morsel_sim > 0 ? part_sim / morsel_sim : 0.0;

  std::printf("\n== Ablation: morsel scheduling (skewed input, %s rows, "
              "1 heavy + %zu small partitions, %zu workers) ==\n",
              bench::WithCommas(total_rows).c_str(), kSmallParts, kWorkers);
  std::printf("partition tasks: sim wall %s s  (real %s s)\n",
              Secs(part_sim).c_str(), Secs(part_wall).c_str());
  std::printf("morsel tasks:    sim wall %s s  (real %s s), %llu morsels\n",
              Secs(morsel_sim).c_str(), Secs(morsel_wall).c_str(),
              static_cast<unsigned long long>(morsel_ctx.metrics().morsels()));
  std::printf("simulated-wall speedup: %.2fx   results identical: %s\n",
              speedup, identical ? "yes" : "NO (BUG)");

  bench::BenchRecord record("ablation_morsel",
                            "rows=" + std::to_string(total_rows));
  record.AddConfig("rows", static_cast<uint64_t>(total_rows));
  record.AddConfig("heavy_rows", static_cast<uint64_t>(heavy_rows));
  record.AddConfig("small_partitions", static_cast<uint64_t>(kSmallParts));
  record.AddConfig("workers", static_cast<uint64_t>(kWorkers));
  record.AddConfig("morsel_rows",
                   static_cast<uint64_t>(morsel_ctx.morsel_rows()));
  record.AddMetric("wall_seconds", morsel_wall);
  record.AddMetric("partition_wall_seconds", part_wall);
  record.AddMetric("partition_sim_wall_seconds", part_sim);
  record.AddMetric("morsels", morsel_ctx.metrics().morsels());
  record.AddMetric("sim_wall_speedup", speedup);
  record.AddMetric("identical", identical ? "yes" : "no");
  record.CaptureMetrics(morsel_ctx.metrics());
  record.Emit();

  std::printf(
      "\nExpected shape: the heavy partition pins one worker slot at "
      "partition granularity, so the morsel path's simulated wall time "
      "should be several times lower (>= 1.5x) with identical output.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
