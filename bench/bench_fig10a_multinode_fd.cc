// Reproduces Fig 10(a): multi-node violation detection on TaxA with FD ϕ1.
// Systems: BigDansing-Spark (in-memory backend), BigDansing-Hadoop
// (disk-based backend emulation: per-stage materialization charge),
// Spark SQL, and Shark (capped + extrapolated). The "cluster" is the
// embedded dataflow engine with 16 workers; paper sizes 1M/2M/4M are scaled
// to 100K/200K/400K.
#include <cstdio>

#include "baselines/sql_baseline.h"
#include "bench_util.h"
#include "core/rule_engine.h"
#include "dataflow/mapreduce.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr size_t kQuadraticCap = 8000;
constexpr const char* kRule = "phi1: FD: zipcode -> city";
constexpr size_t kWorkers = 16;

void Run() {
  ResultTable table(
      "Fig 10(a): TaxA phi1, multi-node (16 workers), detection time in "
      "seconds",
      {"rows", "BigDansing-Spark", "BigDansing-Hadoop", "SparkSQL", "Shark",
       "violations"});
  for (size_t base : {100000u, 200000u, 400000u}) {
    size_t rows = ScaledRows(base);
    auto data = GenerateTaxA(rows, 0.1, /*seed=*/rows);
    data.clean = Table();  // Ground truth is unused here; free the memory.

    size_t violations = 0;
    ExecutionContext spark_ctx(kWorkers, Backend::kSpark);
    double spark = TimeSeconds([&] {
      RuleEngine engine(&spark_ctx);
      auto r = engine.Detect(data.dirty, *ParseRule(kRule));
      violations = r.ok() ? r->violations.size() : 0;
    });

    bench::BenchRecord record("fig10a_multinode_fd",
                              "rows=" + std::to_string(rows));
    record.AddConfig("rule", kRule);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(kWorkers));
    record.AddConfig("backend", "spark");
    record.AddMetric("wall_seconds", spark);
    record.AddMetric("violations", static_cast<uint64_t>(violations));
    record.CaptureMetrics(spark_ctx.metrics());
    record.Emit();

    // BigDansing-Hadoop: the real MapReduce backend (Appendix G) — rows
    // are serialized into spill blobs between phases and the shuffle is
    // sort-based, which is where Hadoop pays.
    ExecutionContext hadoop_ctx(kWorkers);
    double hadoop = TimeSeconds(
        [&] { MapReduceDetect(&hadoop_ctx, data.dirty, *ParseRule(kRule)); });

    double sparksql = TimeSeconds([&] {
      SqlBaselineDetect(&spark_ctx, data.dirty, *ParseRule(kRule),
                        SqlEngine::kSparkSql);
    });

    size_t capped = std::min(rows, kQuadraticCap);
    auto capped_data =
        capped == rows ? data : GenerateTaxA(capped, 0.1, /*seed=*/capped);
    double shark = TimeSeconds([&] {
      SqlBaselineDetect(&spark_ctx, capped_data.dirty, *ParseRule(kRule),
                        SqlEngine::kShark);
    });
    std::string shark_cell;
    if (rows <= capped) {
      shark_cell = Secs(shark);
    } else {
      double f = static_cast<double>(rows) / static_cast<double>(capped);
      shark_cell = "~" + Secs(shark * f * f) + " (extrapolated)";
    }

    table.AddRow({bench::WithCommas(rows), Secs(spark), Secs(hadoop),
                  Secs(sparksql), shark_cell, bench::WithCommas(violations)});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): BigDansing-Spark slightly faster than Spark "
      "SQL; BigDansing-Hadoop slower than both (disk-based stage "
      "materialization) but still far ahead of Shark's quadratic plan.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
