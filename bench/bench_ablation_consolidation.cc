// Ablation (DESIGN.md §5): plan consolidation / shared scans (§4.2,
// Algorithm 1). Runs a multi-rule workload twice: DetectAll (one shared
// base scan; rules with identical Scope/Block parameters reuse one blocked
// intermediate) vs one Detect call per rule (each pays its own scan).
// The second rule pair shares both Scope and Block parameters, the case
// Figure 5 consolidates.
#include <cstdio>

#include "bench_util.h"
#include "core/logical_plan.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

void Run() {
  const size_t rows = ScaledRows(200000);
  auto data = GenerateTaxA(rows, 0.1, /*seed=*/21);
  // Two DCs over the same attributes: identical Scope and Block params, so
  // consolidation shares the scoped scan and the blocking pass.
  std::vector<RulePtr> rules = {
      *ParseRule("c1: DC: t1.zipcode = t2.zipcode & t1.city != t2.city"),
      *ParseRule("c2: DC: t1.zipcode = t2.zipcode & t1.city ~0.5 t2.city"),
      *ParseRule("phi1: FD: zipcode -> city"),
  };

  // Show the logical-plan consolidation itself.
  std::vector<LogicalPlan> plans;
  for (const auto& r : rules) {
    plans.push_back(*BuildLogicalPlan(r, data.dirty.schema(), "D1"));
  }
  LogicalPlan merged = MergePlans(plans);
  LogicalPlan consolidated = ConsolidatePlan(merged);
  std::printf("Merged logical plan has %zu operators; consolidated has %zu:\n%s",
              merged.ops.size(), consolidated.ops.size(),
              consolidated.ToString().c_str());

  ExecutionContext ctx(16);
  RuleEngine engine(&ctx);
  DetectRequest all_request;
  all_request.table = &data.dirty;
  all_request.rules = rules;
  // Warm up both paths once (allocator / page-cache effects), then measure.
  engine.Detect(all_request);
  for (const auto& r : rules) engine.Detect(data.dirty, r);
  double shared = TimeSeconds([&] { engine.Detect(all_request); });
  double separate = TimeSeconds([&] {
    for (const auto& r : rules) engine.Detect(data.dirty, r);
  });

  bench::BenchRecord record("ablation_consolidation",
                            "rows=" + std::to_string(rows));
  record.AddConfig("rows", static_cast<uint64_t>(rows));
  record.AddConfig("workers", static_cast<uint64_t>(16));
  record.AddConfig("rules", static_cast<uint64_t>(rules.size()));
  record.AddMetric("wall_seconds", shared);
  record.AddMetric("separate_seconds", separate);
  record.CaptureMetrics(ctx.metrics());
  record.Emit();

  ResultTable table(
      "Ablation: plan consolidation (shared scans) on TaxA, 3 rules",
      {"rows", "consolidated DetectAll (s)", "separate Detect calls (s)",
       "saving"});
  char saving[16];
  std::snprintf(saving, sizeof(saving), "%.1f%%",
                separate > 0 ? (1.0 - shared / separate) * 100.0 : 0.0);
  table.AddRow({bench::WithCommas(rows), Secs(shared), Secs(separate), saving});
  table.Print();
  std::printf(
      "Expected shape: the consolidated run is faster because the base scan "
      "runs once and rules c1/c2 share one Scope and one Block pass.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
