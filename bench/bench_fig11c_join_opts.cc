// Reproduces Fig 11(c): the physical-optimization ablation — CrossProduct
// (wrapper) vs UCrossProduct vs OCJoin for the inequality DC ϕ2 on TaxB.
// Paper sizes 100K/200K/300K scaled to 3K/6K/9K (the quadratic variants run
// in full here, no extrapolation, so the factors are measured not
// estimated).
#include <cstdio>

#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr const char* kRule =
    "phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate";

void Run() {
  ResultTable table(
      "Fig 11(c): Iterate enhancer ablation on TaxB phi2, detection time in "
      "seconds (16 workers)",
      {"rows", "CrossProduct", "UCrossProduct", "OCJoin", "OCJoin factor",
       "violations"});
  for (size_t base : {3000u, 6000u, 9000u}) {
    size_t rows = ScaledRows(base);
    auto data = GenerateTaxB(rows, 0.1, /*seed=*/rows);
    ExecutionContext ctx(16);

    PlannerOptions cross_options;
    cross_options.enable_ocjoin = false;
    cross_options.enable_ucross_product = false;
    double cross = TimeSeconds([&] {
      RuleEngine(&ctx, cross_options).Detect(data.dirty, *ParseRule(kRule));
    });

    PlannerOptions ucross_options;
    ucross_options.enable_ocjoin = false;
    double ucross = TimeSeconds([&] {
      RuleEngine(&ctx, ucross_options).Detect(data.dirty, *ParseRule(kRule));
    });

    size_t violations = 0;
    double ocjoin = TimeSeconds([&] {
      auto r = RuleEngine(&ctx).Detect(data.dirty, *ParseRule(kRule));
      violations = r.ok() ? r->violations.size() : 0;
    });
    bench::MaybeEmitStageJson("fig11c:rows=" + std::to_string(rows),
                              ctx.metrics().ToJson());
    bench::BenchRecord record("fig11c_join_opts",
                              "rows=" + std::to_string(rows));
    record.AddConfig("rule", kRule);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(16));
    record.AddMetric("wall_seconds", ocjoin);
    record.AddMetric("cross_product_seconds", cross);
    record.AddMetric("ucross_product_seconds", ucross);
    record.AddMetric("violations", static_cast<uint64_t>(violations));
    record.CaptureMetrics(ctx.metrics());
    record.Emit();

    char factor[16];
    std::snprintf(factor, sizeof(factor), "%.0fx",
                  ocjoin > 0 ? cross / ocjoin : 0.0);
    table.AddRow({bench::WithCommas(rows), Secs(cross), Secs(ucross),
                  Secs(ocjoin), factor, bench::WithCommas(violations)});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): UCrossProduct slightly ahead of CrossProduct "
      "(it avoids materializing reversed pairs), with the gap growing with "
      "size; OCJoin beats both by orders of magnitude (the paper measured "
      "up to 655x).\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
