// Reproduces Fig 11(a): scale-out — detection time on TPCH ϕ3 (paper: 5M
// rows, scaled to 500K) as the number of workers grows from 1 to 16.
//
// This host may have fewer physical cores than workers, so the bench
// reports, next to raw wall time, the *simulated cluster time*: every
// partition task's busy time is accrued to its logical worker
// (partition % workers) and the busiest worker's sum is what a real
// cluster of that size would have waited for. The paper's shape — near
// linear speedup, BigDansing ~3x faster than Spark SQL at equal workers —
// shows up in that column.
#include <cstdio>

#include "baselines/sql_baseline.h"
#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr const char* kRule = "phi3: FD: o_custkey -> c_address";

void Run() {
  const size_t rows = ScaledRows(500000);
  auto data = GenerateTpch(rows, 0.1, /*seed=*/4242);
  ResultTable table(
      "Fig 11(a): scale-out on TPCH phi3, " + bench::WithCommas(rows) +
          " rows, detection",
      {"workers", "BigDansing sim-cluster (s)", "BigDansing wall (s)",
       "SparkSQL wall (s)", "speedup vs 1 worker"});
  double first_sim = 0.0;
  for (size_t workers : {1u, 2u, 4u, 8u, 16u}) {
    ExecutionContext ctx(workers);
    RuleEngine engine(&ctx);
    double wall = TimeSeconds(
        [&] { engine.Detect(data.dirty, *ParseRule(kRule)); });
    double sim = ctx.metrics().SimulatedWallSeconds();
    bench::MaybeEmitStageJson("fig11a:workers=" + std::to_string(workers),
                              ctx.metrics().ToJson());
    bench::BenchRecord record("fig11a_scaleout",
                              "workers=" + std::to_string(workers));
    record.AddConfig("rule", kRule);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(workers));
    record.AddMetric("wall_seconds", wall);
    record.CaptureMetrics(ctx.metrics());
    record.Emit();
    double sparksql = TimeSeconds([&] {
      SqlBaselineDetect(&ctx, data.dirty, *ParseRule(kRule),
                        SqlEngine::kSparkSql);
    });
    if (workers == 1) first_sim = sim;
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  sim > 0 ? first_sim / sim : 0.0);
    table.AddRow({std::to_string(workers), Secs(sim), Secs(wall),
                  Secs(sparksql), speedup});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): near-linear speedup with workers in the "
      "simulated-cluster column (wall time is bounded by this host's "
      "physical cores).\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
