// Reproduces Fig 10(c): detection on large TPCH datasets with FD ϕ3,
// BigDansing-Spark vs BigDansing-Hadoop vs Spark SQL (16 workers). Paper
// sizes 959M-1970M rows (15-30GB) are scaled to 0.5M-2M; the paper's
// takeaways — Spark mode 16-22x faster than Hadoop mode in their setup
// (here the materialization charge is milder), and consistently faster
// than Spark SQL — are the shapes to check.
#include <cstdio>

#include "baselines/sql_baseline.h"
#include "bench_util.h"
#include "core/rule_engine.h"
#include "dataflow/mapreduce.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr const char* kRule = "phi3: FD: o_custkey -> c_address";
constexpr size_t kWorkers = 16;

void Run() {
  ResultTable table(
      "Fig 10(c): large TPCH phi3, multi-node (16 workers), detection time "
      "in seconds",
      {"rows", "BigDansing-Spark", "BigDansing-Hadoop", "SparkSQL",
       "violations"});
  for (size_t base : {500000u, 1000000u, 1500000u, 2000000u}) {
    size_t rows = ScaledRows(base);
    auto data = GenerateTpch(rows, 0.1, /*seed=*/rows);
    data.clean = Table();  // Ground truth is unused here; free the memory.

    size_t violations = 0;
    ExecutionContext spark_ctx(kWorkers, Backend::kSpark);
    double spark = TimeSeconds([&] {
      RuleEngine engine(&spark_ctx);
      auto r = engine.Detect(data.dirty, *ParseRule(kRule));
      violations = r.ok() ? r->violations.size() : 0;
    });

    bench::BenchRecord record("fig10c_large_tpch",
                              "rows=" + std::to_string(rows));
    record.AddConfig("rule", kRule);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(kWorkers));
    record.AddConfig("backend", "spark");
    record.AddMetric("wall_seconds", spark);
    record.AddMetric("violations", static_cast<uint64_t>(violations));
    record.CaptureMetrics(spark_ctx.metrics());
    record.Emit();

    // BigDansing-Hadoop: the real MapReduce backend (Appendix G) with
    // serialized spill blobs and a sort-based shuffle.
    ExecutionContext hadoop_ctx(kWorkers);
    double hadoop = TimeSeconds(
        [&] { MapReduceDetect(&hadoop_ctx, data.dirty, *ParseRule(kRule)); });

    double sparksql = TimeSeconds([&] {
      SqlBaselineDetect(&spark_ctx, data.dirty, *ParseRule(kRule),
                        SqlEngine::kSparkSql);
    });

    table.AddRow({bench::WithCommas(rows), Secs(spark), Secs(hadoop),
                  Secs(sparksql), bench::WithCommas(violations)});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): BigDansing-Spark fastest; Hadoop mode pays "
      "stage materialization; Spark SQL trails BigDansing because of its "
      "extra input copy and duplicate violations.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
