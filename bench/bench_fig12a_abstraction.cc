// Reproduces Fig 12(a): the value of the full five-operator abstraction —
// the same dedup UDF run (a) through the full API (Scope + Block + Iterate
// hints) and (b) through Detect alone (the rule as a pure black box, no
// data-flow hints), on the smallest TaxA dataset, single node.
#include <cstdio>

#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/similarity.h"
#include "rules/udf_rule.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

/// Dedup UDF on the TaxA name attribute. `full_api` adds the Scope hint
/// (name only) and the blocking key (name prefix); without it the rule is
/// a bare Detect black box.
std::shared_ptr<UdfRule> MakeRule(bool full_api) {
  auto rule = std::make_shared<UdfRule>("taxa-dedup");
  rule->set_symmetric(true).set_detect(
      [](const Schema& schema, const Row& a, const Row& b,
         std::vector<Violation>* out) {
        // After Scope the name is column 0; without Scope it also is
        // column 0 of the TaxA schema, so both variants read value(0).
        if (!IsSimilar(a.value(0).ToString(), b.value(0).ToString(), 0.8)) {
          return;
        }
        Violation v;
        v.rule_name = "taxa-dedup";
        v.cells.push_back(UdfRule::MakeUdfCell(a, 0, schema));
        v.cells.push_back(UdfRule::MakeUdfCell(b, 0, schema));
        out->push_back(std::move(v));
      });
  if (full_api) {
    rule->set_relevant_attributes({"name"});
    rule->set_block_key([](const Schema&, const Row& row) {
      std::string name = row.value(0).ToString();
      if (name.size() < 2) return Value(name);
      return Value(name.substr(0, 2));
    });
  }
  return rule;
}

void Run() {
  ResultTable table(
      "Fig 12(a): full logical-operator API vs Detect-only UDF (TaxA dedup, "
      "single node)",
      {"rows", "full API (s)", "Detect-only (s)", "factor", "detect calls "
       "(full)", "detect calls (only)"});
  const size_t rows = ScaledRows(3000);
  auto data = GenerateTaxA(rows, 0.1, /*seed=*/5);
  ExecutionContext ctx(8);
  RuleEngine engine(&ctx);

  uint64_t full_calls = 0;
  double full = TimeSeconds([&] {
    auto r = engine.Detect(data.dirty, MakeRule(true));
    full_calls = r.ok() ? r->detect_calls : 0;
  });

  PlannerOptions bare;
  bare.enable_scope = false;
  bare.enable_blocking = false;
  bare.enable_ucross_product = false;
  RuleEngine bare_engine(&ctx, bare);
  uint64_t only_calls = 0;
  double only = TimeSeconds([&] {
    auto r = bare_engine.Detect(data.dirty, MakeRule(false));
    only_calls = r.ok() ? r->detect_calls : 0;
  });

  bench::BenchRecord record("fig12a_abstraction",
                            "rows=" + std::to_string(rows));
  record.AddConfig("rows", static_cast<uint64_t>(rows));
  record.AddConfig("workers", static_cast<uint64_t>(8));
  record.AddMetric("wall_seconds", full);
  record.AddMetric("detect_only_seconds", only);
  record.AddMetric("detect_calls_full", full_calls);
  record.AddMetric("detect_calls_only", only_calls);
  record.CaptureMetrics(ctx.metrics());
  record.Emit();

  char factor[16];
  std::snprintf(factor, sizeof(factor), "%.0fx", full > 0 ? only / full : 0.0);
  table.AddRow({bench::WithCommas(rows), Secs(full), Secs(only), factor,
                bench::WithCommas(full_calls), bench::WithCommas(only_calls)});
  table.Print();
  std::printf(
      "Expected shape (paper): the full API is orders of magnitude faster "
      "even on a single node, because Scope/Block shrink the candidate "
      "space that reaches the black-box Detect.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
