// Reproduces Fig 9(b): single-node violation detection on TaxB with the
// inequality DC ϕ2 (t1.salary > t2.salary & t1.rate < t2.rate). BigDansing
// uses OCJoin; every baseline pays a cross product with post-selection.
// Paper sizes 100K/200K/300K are scaled to 10K/20K/30K; quadratic baselines
// are measured at a cap and extrapolated ("~"), the analogue of the paper's
// 4-hour timeout for Spark SQL and Shark.
#include <cstdio>

#include "baselines/nadeef_baseline.h"
#include "baselines/sql_baseline.h"
#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr size_t kQuadraticCap = 6000;
constexpr const char* kRule =
    "phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate";

std::string Extrapolate(double capped_seconds, size_t rows, size_t cap) {
  if (rows <= cap) return Secs(capped_seconds);
  double f = static_cast<double>(rows) / static_cast<double>(cap);
  return "~" + Secs(capped_seconds * f * f) + " (extrapolated)";
}

void Run() {
  ResultTable table(
      "Fig 9(b): TaxB phi2 (inequality DC), single node, detection time in "
      "seconds",
      {"rows", "BigDansing(OCJoin)", "SparkSQL", "PostgreSQL", "Shark",
       "NADEEF", "violations"});
  for (size_t base : {10000u, 20000u, 30000u}) {
    size_t rows = ScaledRows(base);
    auto data = GenerateTaxB(rows, 0.1, /*seed=*/rows);

    ExecutionContext ctx(8);
    RuleEngine engine(&ctx);
    size_t violations = 0;
    double bigdansing = TimeSeconds([&] {
      auto r = engine.Detect(data.dirty, *ParseRule(kRule));
      violations = r.ok() ? r->violations.size() : 0;
    });
    bench::BenchRecord record("fig9b_taxb_dc", "rows=" + std::to_string(rows));
    record.AddConfig("rule", kRule);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(8));
    record.AddMetric("wall_seconds", bigdansing);
    record.AddMetric("violations", static_cast<uint64_t>(violations));
    record.CaptureMetrics(ctx.metrics());
    record.Emit();

    size_t capped = std::min(rows, kQuadraticCap);
    auto capped_data =
        capped == rows ? data : GenerateTaxB(capped, 0.1, /*seed=*/capped);
    double sparksql = TimeSeconds([&] {
      SqlBaselineDetect(&ctx, capped_data.dirty, *ParseRule(kRule),
                        SqlEngine::kSparkSql);
    });
    ExecutionContext single(1);
    double postgres = TimeSeconds([&] {
      SqlBaselineDetect(&single, capped_data.dirty, *ParseRule(kRule),
                        SqlEngine::kPostgres);
    });
    double shark = TimeSeconds([&] {
      SqlBaselineDetect(&ctx, capped_data.dirty, *ParseRule(kRule),
                        SqlEngine::kShark);
    });
    double nadeef =
        TimeSeconds([&] { NadeefDetect(capped_data.dirty, *ParseRule(kRule)); });

    table.AddRow({bench::WithCommas(rows), Secs(bigdansing),
                  Extrapolate(sparksql, rows, capped),
                  Extrapolate(postgres, rows, capped),
                  Extrapolate(shark, rows, capped),
                  Extrapolate(nadeef, rows, capped),
                  bench::WithCommas(violations)});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): BigDansing is 1-2+ orders of magnitude "
      "faster than every baseline thanks to OCJoin; the gap grows with "
      "size because the baselines are quadratic.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
