// Reproduces Fig 9(c): single-node violation detection on TPCH with FD ϕ3
// (o_custkey -> c_address). Paper sizes 100K/1M/10M scaled to 10K/100K/1M.
#include <cstdio>

#include "baselines/nadeef_baseline.h"
#include "baselines/sql_baseline.h"
#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr size_t kQuadraticCap = 8000;
constexpr const char* kRule = "phi3: FD: o_custkey -> c_address";

std::string Extrapolate(double capped_seconds, size_t rows, size_t cap) {
  if (rows <= cap) return Secs(capped_seconds);
  double f = static_cast<double>(rows) / static_cast<double>(cap);
  return "~" + Secs(capped_seconds * f * f) + " (extrapolated)";
}

void Run() {
  ResultTable table(
      "Fig 9(c): TPCH phi3 (FD o_custkey->c_address), single node, "
      "detection time in seconds",
      {"rows", "BigDansing", "SparkSQL", "PostgreSQL", "Shark", "NADEEF",
       "violations"});
  for (size_t base : {10000u, 100000u, 1000000u}) {
    size_t rows = ScaledRows(base);
    auto data = GenerateTpch(rows, 0.1, /*seed=*/rows);
    data.clean = Table();  // Ground truth is unused here; free the memory.

    ExecutionContext ctx(8);
    RuleEngine engine(&ctx);
    size_t violations = 0;
    double bigdansing = TimeSeconds([&] {
      auto r = engine.Detect(data.dirty, *ParseRule(kRule));
      violations = r.ok() ? r->violations.size() : 0;
    });
    bench::BenchRecord record("fig9c_tpch_fd", "rows=" + std::to_string(rows));
    record.AddConfig("rule", kRule);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(8));
    record.AddMetric("wall_seconds", bigdansing);
    record.AddMetric("violations", static_cast<uint64_t>(violations));
    record.CaptureMetrics(ctx.metrics());
    record.Emit();
    double sparksql = TimeSeconds([&] {
      SqlBaselineDetect(&ctx, data.dirty, *ParseRule(kRule),
                        SqlEngine::kSparkSql);
    });
    ExecutionContext single(1);
    double postgres = TimeSeconds([&] {
      SqlBaselineDetect(&single, data.dirty, *ParseRule(kRule),
                        SqlEngine::kPostgres);
    });

    size_t capped = std::min(rows, kQuadraticCap);
    auto capped_data =
        capped == rows ? data : GenerateTpch(capped, 0.1, /*seed=*/capped);
    double shark = TimeSeconds([&] {
      SqlBaselineDetect(&ctx, capped_data.dirty, *ParseRule(kRule),
                        SqlEngine::kShark);
    });
    double nadeef =
        TimeSeconds([&] { NadeefDetect(capped_data.dirty, *ParseRule(kRule)); });

    table.AddRow({bench::WithCommas(rows), Secs(bigdansing), Secs(sparksql),
                  Secs(postgres), Extrapolate(shark, rows, capped),
                  Extrapolate(nadeef, rows, capped),
                  bench::WithCommas(violations)});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): BigDansing twice as fast as PostgreSQL at "
      "the largest size and 3+ orders faster than NADEEF; comparable to "
      "Spark SQL.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
