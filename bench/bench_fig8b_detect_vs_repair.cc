// Reproduces Fig 8(b): the split of the cleansing time between violation
// detection and data repair as the error rate grows (ϕ1 on TaxA, paper size
// 1M scaled to 100K). The paper's observation: detection dominates (>90%)
// at every error rate.
#include <cstdio>

#include "bench_util.h"
#include "core/bigdansing.h"
#include "datagen/datagen.h"
#include "obs/quality.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;

void Run() {
  ResultTable table(
      "Fig 8(b): detection vs repair time by error rate (TaxA phi1)",
      {"error rate", "detect (s)", "repair (s)", "detect share",
       "violations(iter1)"});
  const size_t rows = ScaledRows(100000);
  for (double rate : {0.01, 0.05, 0.10, 0.50}) {
    auto data = GenerateTaxA(rows, rate, /*seed=*/77);
    ExecutionContext ctx(8);
    BigDansing system(&ctx);
    Table working = data.dirty;
    QualityRecorder& quality_recorder = QualityRecorder::Instance();
    const bool quality_was_enabled = quality_recorder.enabled();
    quality_recorder.set_enabled(true);
    auto report = system.Clean(&working, {*ParseRule("phi1: FD: zipcode -> city")});
    QualityRunRecord quality_run;
    quality_recorder.LatestRun(&quality_run);
    quality_recorder.set_enabled(quality_was_enabled);
    if (!report.ok()) {
      std::fprintf(stderr, "clean failed: %s\n",
                   report.status().ToString().c_str());
      continue;
    }
    bench::BenchRecord record(
        "fig8b_detect_vs_repair",
        "error_rate=" + std::to_string(static_cast<int>(rate * 100)) + "%");
    record.AddConfig("rule", "phi1: FD: zipcode -> city");
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("error_rate", rate);
    record.AddConfig("workers", static_cast<uint64_t>(8));
    record.AddMetric("wall_seconds",
                     report->total_detect_seconds + report->total_repair_seconds);
    record.AddMetric("detect_seconds", report->total_detect_seconds);
    record.AddMetric("repair_seconds", report->total_repair_seconds);
    record.AddMetric("violations_iter1",
                     static_cast<uint64_t>(report->iterations.empty()
                                               ? 0
                                               : report->iterations[0].violations));
    record.AddQuality(quality_run.TotalViolations(), quality_run.TotalFixes(),
                      quality_run.TotalUnresolved(),
                      static_cast<uint64_t>(report->num_iterations()));
    record.CaptureMetrics(ctx.metrics());
    record.Emit();
    double share =
        report->total_detect_seconds /
        (report->total_detect_seconds + report->total_repair_seconds + 1e-12);
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.1f%%", share * 100.0);
    table.AddRow({std::to_string(static_cast<int>(rate * 100)) + "%",
                  Secs(report->total_detect_seconds),
                  Secs(report->total_repair_seconds), pct,
                  bench::WithCommas(report->iterations.empty()
                                        ? 0
                                        : report->iterations[0].violations)});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): violation detection takes >90%% of the "
      "cleansing time regardless of the error rate.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
