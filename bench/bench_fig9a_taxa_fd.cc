// Reproduces Fig 9(a): single-node violation detection time on TaxA with
// FD ϕ1 (zipcode -> city), BigDansing vs Spark SQL / PostgreSQL / Shark /
// NADEEF plan emulations. Paper sizes 100K/1M/10M are scaled to
// 10K/100K/1M (BD_SCALE multiplies). Quadratic baselines (Shark, NADEEF)
// are measured up to a cap and extrapolated beyond it ("~" prefix), the
// analogue of the paper's 4-hour timeout.
#include <cstdio>

#include "baselines/nadeef_baseline.h"
#include "baselines/sql_baseline.h"
#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

constexpr size_t kQuadraticCap = 8000;

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

std::string QuadraticCell(double capped_seconds, size_t rows, size_t cap) {
  if (rows <= cap) return Secs(capped_seconds);
  double factor = static_cast<double>(rows) / static_cast<double>(cap);
  return "~" + Secs(capped_seconds * factor * factor) + " (extrapolated)";
}

void Run() {
  ResultTable table(
      "Fig 9(a): TaxA phi1 (FD zipcode->city), single node, detection "
      "time in seconds",
      {"rows", "BigDansing", "SparkSQL", "PostgreSQL", "Shark", "NADEEF",
       "violations"});
  const size_t kWorkers = 8;
  for (size_t base : {10000u, 100000u, 1000000u}) {
    size_t rows = ScaledRows(base);
    auto data = GenerateTaxA(rows, 0.1, /*seed=*/rows);
    data.clean = Table();  // Ground truth is unused here; free the memory.
    auto rule_text = "phi1: FD: zipcode -> city";

    ExecutionContext ctx(kWorkers);
    RuleEngine engine(&ctx);
    size_t violations = 0;
    double bigdansing = TimeSeconds([&] {
      auto r = engine.Detect(data.dirty, *ParseRule(rule_text));
      violations = r.ok() ? r->violations.size() : 0;
    });
    bench::MaybeEmitStageJson("fig9a:rows=" + std::to_string(rows),
                              ctx.metrics().ToJson());
    bench::BenchRecord record("fig9a_taxa_fd",
                              "rows=" + std::to_string(rows));
    record.AddConfig("rule", rule_text);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(kWorkers));
    record.AddMetric("wall_seconds", bigdansing);
    record.AddMetric("violations", static_cast<uint64_t>(violations));
    record.CaptureMetrics(ctx.metrics());
    record.Emit();

    double sparksql = TimeSeconds([&] {
      SqlBaselineDetect(&ctx, data.dirty, *ParseRule(rule_text),
                        SqlEngine::kSparkSql);
    });
    ExecutionContext single(1);
    double postgres = TimeSeconds([&] {
      SqlBaselineDetect(&single, data.dirty, *ParseRule(rule_text),
                        SqlEngine::kPostgres);
    });

    // Quadratic plans: measure at the cap, extrapolate beyond.
    size_t capped = std::min(rows, kQuadraticCap);
    auto capped_data =
        capped == rows ? data : GenerateTaxA(capped, 0.1, /*seed=*/capped);
    double shark = TimeSeconds([&] {
      SqlBaselineDetect(&ctx, capped_data.dirty, *ParseRule(rule_text),
                        SqlEngine::kShark);
    });
    double nadeef = TimeSeconds([&] {
      NadeefDetect(capped_data.dirty, *ParseRule(rule_text));
    });

    table.AddRow({bench::WithCommas(rows), Secs(bigdansing), Secs(sparksql),
                  Secs(postgres), QuadraticCell(shark, rows, capped),
                  QuadraticCell(nadeef, rows, capped),
                  bench::WithCommas(violations)});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): PostgreSQL competitive at the smallest size; "
      "BigDansing and SparkSQL close and fastest at scale; Shark and NADEEF "
      "orders of magnitude slower (quadratic plans).\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
