// Ablation (follow-on work): OCJoin (Algorithm 2's partitioned sort-merge,
// §4.3) vs IEJoin (the sort/permutation/bit-array algorithm the BigDansing
// authors published next) on the inequality DC ϕ2 over TaxB. IEJoin never
// enumerates pairs satisfying only the first condition, so its advantage
// grows when that condition is unselective.
#include <cstdio>

#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr const char* kRule =
    "phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate";

void Run() {
  ResultTable table(
      "Ablation: OCJoin vs IEJoin on TaxB phi2, detection time in seconds "
      "(16 workers)",
      {"rows", "OCJoin (s)", "candidates", "IEJoin (s)", "violations match"});
  for (size_t base : {20000u, 50000u, 100000u}) {
    size_t rows = ScaledRows(base);
    auto data = GenerateTaxB(rows, 0.1, /*seed=*/rows);
    data.clean = Table();
    ExecutionContext ctx(16);

    RuleEngine oc_engine(&ctx);
    size_t oc_violations = 0;
    size_t candidates = 0;
    double ocjoin = TimeSeconds([&] {
      auto r = oc_engine.Detect(data.dirty, *ParseRule(kRule));
      if (r.ok()) {
        oc_violations = r->violations.size();
        candidates = r->ocjoin_stats.candidate_pairs;
      }
    });

    PlannerOptions ie_options;
    ie_options.use_iejoin = true;
    RuleEngine ie_engine(&ctx, ie_options);
    size_t ie_violations = 0;
    double iejoin = TimeSeconds([&] {
      auto r = ie_engine.Detect(data.dirty, *ParseRule(kRule));
      if (r.ok()) ie_violations = r->violations.size();
    });

    bench::BenchRecord record("ablation_iejoin",
                              "rows=" + std::to_string(rows));
    record.AddConfig("rule", kRule);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(16));
    record.AddMetric("wall_seconds", iejoin);
    record.AddMetric("ocjoin_seconds", ocjoin);
    record.AddMetric("candidate_pairs", static_cast<uint64_t>(candidates));
    record.AddMetric("violations", static_cast<uint64_t>(ie_violations));
    record.CaptureMetrics(ctx.metrics());
    record.Emit();

    table.AddRow({bench::WithCommas(rows), Secs(ocjoin),
                  bench::WithCommas(candidates), Secs(iejoin),
                  oc_violations == ie_violations ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "Expected shape: identical violations; IEJoin avoids OCJoin's "
      "candidate enumeration (the 'candidates' column) and pulls ahead as "
      "data grows.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
