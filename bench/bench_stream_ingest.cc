// Streaming ingest (extension beyond the paper): per-batch latency of a
// CleanStream session against the cost of re-detecting the whole table
// after every micro-batch. The stream session keeps a persistent
// blocking-key -> candidate-rows index, so each window only re-detects the
// blocks its batch touched; the naive alternative pays a full detection
// pass per batch. The figure of merit is the simulated-wall ratio between
// one full re-detect at the final table size and the average streamed
// window — the regression gate (check_regression.py) requires it to stay
// above the min_speedup recorded in the config.
#include <cstdio>

#include "bench_util.h"
#include "core/bigdansing.h"
#include "core/rule_engine.h"
#include "core/stream_session.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

int Run() {
  const size_t rows = ScaledRows(200000);
  // 1% of the final size per micro-batch: the paper-scale configuration
  // the acceptance gate is calibrated on.
  const size_t batch_rows = std::max<size_t>(1, rows / 100);
  auto data = GenerateTaxA(rows, 0.1, /*seed=*/81);
  std::vector<RulePtr> rules = {*ParseRule("phi1: FD: zipcode -> city"),
                                *ParseRule("phi6: FD: zipcode -> state")};

  // Streamed ingestion: one session, one Poll per micro-batch.
  Table streamed(data.dirty.schema());
  ExecutionContext ctx(16);
  BigDansing system(&ctx);
  StreamOptions options;
  options.batch_rows = batch_rows;
  options.max_inflight_batches = rows;  // Queue everything; drain manually.
  options.session_name = "bench-stream-ingest";
  auto session = system.OpenStream(&streamed, rules, options);
  if (!session.ok()) {
    std::fprintf(stderr, "OpenStream failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::vector<Row> all(data.dirty.rows().begin(), data.dirty.rows().end());
  if (!(*session)->Append(std::move(all)).ok()) return 1;

  size_t windows = 0;
  double ingest_wall = 0.0;
  double max_batch_wall = 0.0;
  while ((*session)->pending_batches() > 0) {
    double batch_wall = TimeSeconds([&] {
      auto report = (*session)->Poll();
      if (!report.ok()) {
        std::fprintf(stderr, "Poll failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(1);
      }
    });
    ingest_wall += batch_wall;
    max_batch_wall = std::max(max_batch_wall, batch_wall);
    ++windows;
  }
  // Snapshot the streamed windows' simulated wall before Flush: the flush
  // verification passes are full-table by design and would dilute the
  // per-batch figure.
  const double stream_sim = (*session)->metrics().SimulatedWallSeconds();
  const double per_batch_sim = windows > 0 ? stream_sim / windows : 0.0;
  double flush_wall = TimeSeconds([&] {
    auto flushed = (*session)->Flush();
    if (!flushed.ok()) std::exit(1);
  });
  auto stats = (*session)->stats();

  // The naive alternative's unit cost: one full detection pass over the
  // fully-ingested table (what every batch would pay without the index).
  ExecutionContext full_ctx(16);
  RuleEngine engine(&full_ctx);
  DetectRequest full_request;
  full_request.table = &streamed;
  full_request.rules = rules;
  double full_wall = TimeSeconds([&] {
    auto result = engine.Detect(full_request);
    if (!result.ok()) std::exit(1);
  });
  const double full_sim = full_ctx.metrics().SimulatedWallSeconds();
  const double speedup = per_batch_sim > 0 ? full_sim / per_batch_sim : 0.0;

  bench::BenchRecord record("stream_ingest", "rows=" + std::to_string(rows) +
                                                 ",batch=1pct");
  record.AddConfig("rows", static_cast<uint64_t>(rows));
  record.AddConfig("batch_rows", static_cast<uint64_t>(batch_rows));
  record.AddConfig("batches", static_cast<uint64_t>(windows));
  record.AddConfig("workers", static_cast<uint64_t>(16));
  record.AddConfig("rules", static_cast<uint64_t>(rules.size()));
  // The 5x acceptance gate is calibrated at paper scale (>= 20K rows);
  // below that, fixed per-window stage overheads dominate the simulated
  // wall and the ratio is meaningless, so the record gates advisory-only.
  const bool gated = rows >= 20000;
  record.AddConfig("min_speedup", gated ? 5.0 : 0.0);
  record.AddMetric("wall_seconds", ingest_wall);
  record.AddMetric("per_batch_wall_seconds",
                   windows > 0 ? ingest_wall / windows : 0.0);
  record.AddMetric("max_batch_wall_seconds", max_batch_wall);
  record.AddMetric("flush_wall_seconds", flush_wall);
  record.AddMetric("per_batch_simulated_seconds", per_batch_sim);
  record.AddMetric("full_redetect_wall_seconds", full_wall);
  record.AddMetric("full_redetect_simulated_seconds", full_sim);
  record.AddMetric("speedup", speedup);
  record.AddMetric("violations", stats.violations_found);
  record.AddMetric("fixes", stats.fixes_applied);
  record.CaptureMetrics((*session)->metrics());
  record.Emit();

  // One record for the full re-detect too, so the baseline tracks its
  // absolute simulated wall alongside the streamed path's.
  bench::BenchRecord full_record("stream_ingest",
                                 "full_redetect,rows=" + std::to_string(rows));
  full_record.AddConfig("rows", static_cast<uint64_t>(rows));
  full_record.AddConfig("workers", static_cast<uint64_t>(16));
  full_record.AddMetric("wall_seconds", full_wall);
  full_record.CaptureMetrics(full_ctx.metrics());
  full_record.Emit();

  ResultTable table("Streaming ingest: per-batch incremental window vs full "
                    "re-detect (TaxA phi1+phi6, " +
                        bench::WithCommas(rows) + " rows, " +
                        bench::WithCommas(batch_rows) + "-row batches)",
                    {"metric", "seconds"});
  char buf[32];
  table.AddRow({"ingest wall (all batches)", Secs(ingest_wall)});
  table.AddRow({"avg batch wall",
                Secs(windows > 0 ? ingest_wall / windows : 0.0)});
  table.AddRow({"max batch wall", Secs(max_batch_wall)});
  table.AddRow({"avg batch simulated", Secs(per_batch_sim)});
  table.AddRow({"full re-detect simulated", Secs(full_sim)});
  std::snprintf(buf, sizeof(buf), "%.1fx", speedup);
  table.AddRow({"speedup (simulated)", buf});
  table.Print();
  std::printf("windows=%zu violations=%llu fixes=%llu\n", windows,
              static_cast<unsigned long long>(stats.violations_found),
              static_cast<unsigned long long>(stats.fixes_applied));

  if (gated && speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: per-batch incremental detect only %.2fx cheaper than "
                 "full re-detect (gate: 5x)\n",
                 speedup);
    return 1;
  }
  if (!gated) {
    std::printf("note: %zu rows is below the 20K-row gate calibration; "
                "speedup gate not enforced\n", rows);
  }
  return 0;
}

}  // namespace
}  // namespace bigdansing

int main() { return bigdansing::Run(); }
