// Ablation (extension beyond the paper): incremental re-detection.
// After a repair pass changed k rows, the next detection pass only needs
// the violations touching those rows (RuleEngine::DetectIncremental).
// The saving scales with the cost of Detect: this bench uses a similarity
// DC (Levenshtein on name within zipcode blocks), where skipping untouched
// blocks skips real work. The loop-level integration (CleanOptions::
// incremental_redetection) wires this in with a final full verification
// pass; the last table shows that end-to-end equivalence.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/bigdansing.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr const char* kRule =
    "sim: DC: t1.zipcode = t2.zipcode & t1.name ~0.6 t2.name & "
    "t1.city != t2.city";

void RunOperation() {
  const size_t rows = ScaledRows(200000);
  auto data = GenerateTaxA(rows, 0.1, /*seed=*/71);
  ExecutionContext ctx(16);
  RuleEngine engine(&ctx);

  double full = TimeSeconds([&] { engine.Detect(data.dirty, *ParseRule(kRule)); });

  ResultTable table(
      "Ablation: incremental re-detection after k changed rows "
      "(similarity DC on TaxA, " + bench::WithCommas(rows) + " rows)",
      {"changed rows", "full detect (s)", "incremental (s)", "speedup"});
  Random rng(5);
  for (double fraction : {0.001, 0.01, 0.05, 0.20}) {
    std::unordered_set<RowId> changed;
    size_t want = std::max<size_t>(1, static_cast<size_t>(rows * fraction));
    while (changed.size() < want) {
      changed.insert(static_cast<RowId>(rng.NextBounded(rows)));
    }
    DetectRequest inc_request;
    inc_request.table = &data.dirty;
    inc_request.rules = {*ParseRule(kRule)};
    inc_request.changed_rows = &changed;
    double incremental = TimeSeconds([&] { engine.Detect(inc_request); });
    bench::BenchRecord record(
        "ablation_incremental",
        "changed=" + std::to_string(changed.size()));
    record.AddConfig("rule", kRule);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(16));
    record.AddConfig("changed_rows", static_cast<uint64_t>(changed.size()));
    record.AddMetric("wall_seconds", incremental);
    record.AddMetric("full_detect_seconds", full);
    record.CaptureMetrics(ctx.metrics());
    record.Emit();
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  incremental > 0 ? full / incremental : 0.0);
    table.AddRow({bench::WithCommas(changed.size()), Secs(full),
                  Secs(incremental), speedup});
  }
  table.Print();
}

void RunLoop() {
  // End-to-end equivalence of the loop integration on a cascading-error
  // workload (zipcodes swapped to other providers' values force 3
  // iterations: the first repair fixes the zipcode but mis-repairs the
  // state, the second fixes the state).
  const size_t rows = ScaledRows(50000);
  auto data = GenerateHai(rows, 0.0, /*seed=*/91);
  Table dirty = data.clean;
  Random rng(92);
  for (size_t i = 0; i < dirty.num_rows(); ++i) {
    if (!rng.NextBool(0.05)) continue;
    size_t other = rng.NextBounded(dirty.num_rows());
    dirty.mutable_row(i).set_value(4, data.clean.row(other).value(4));
  }
  std::vector<RulePtr> rules = {*ParseRule("phi6: FD: zipcode -> state"),
                                *ParseRule("phi7: FD: phone -> zipcode")};
  ExecutionContext ctx(16);

  Table plain = dirty;
  auto plain_report = BigDansing(&ctx, CleanOptions()).Clean(&plain, rules);
  Table inc = dirty;
  CleanOptions inc_options;
  inc_options.incremental_redetection = true;
  auto inc_report = BigDansing(&ctx, inc_options).Clean(&inc, rules);

  std::printf(
      "\nLoop integration (cascading HAI, %zu rows): %zu iterations, "
      "identical repaired instance: %s\n",
      rows, plain_report.ok() ? plain_report->num_iterations() : 0,
      plain == inc ? "yes" : "NO");
  std::printf(
      "Expected shape: incremental detection time scales with the changed "
      "fraction, giving large factors for small deltas; the loop "
      "integration preserves the exact repair result.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::RunOperation();
  bigdansing::RunLoop();
  return 0;
}
