#include "bench_util.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace bigdansing {
namespace bench {

namespace {

/// Static-initializer bootstrap: every bench links util.cc, so the
/// observability env vars take effect without touching each main(). The
/// destructor flushes at normal exit (after main returns).
struct ObservabilityBootstrap {
  ObservabilityBootstrap() { InitObservabilityFromEnv(); }
  ~ObservabilityBootstrap() { FlushObservability(); }
};
ObservabilityBootstrap g_observability_bootstrap;

}  // namespace

void InitObservabilityFromEnv() {
  InitLoggingFromEnv();
  const char* trace_path = std::getenv("BD_TRACE_JSON");
  const char* explain = std::getenv("BD_EXPLAIN");
  const bool want_explain =
      explain != nullptr && *explain != '\0' && std::string(explain) != "0";
  if ((trace_path != nullptr && *trace_path != '\0') || want_explain) {
    TraceRecorder::Instance().set_enabled(true);
  }
}

void FlushObservability() {
  TraceRecorder& trace = TraceRecorder::Instance();
  if (!trace.enabled() || trace.SpanCount() == 0) return;
  const char* trace_path = std::getenv("BD_TRACE_JSON");
  if (trace_path != nullptr && *trace_path != '\0') {
    if (!trace.WriteChromeTrace(trace_path)) {
      BD_LOG(Warning) << "failed to write Chrome trace to " << trace_path;
    }
  }
  const char* explain = std::getenv("BD_EXPLAIN");
  if (explain != nullptr && *explain != '\0' && std::string(explain) != "0") {
    std::string tree = trace.ExplainTree();
    std::fwrite(tree.data(), 1, tree.size(), stdout);
    std::fflush(stdout);
  }
}

double EnvScale() {
  const char* env = std::getenv("BD_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

size_t ScaledRows(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * EnvScale());
}

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ResultTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void ResultTable::Print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

void MaybeEmitStageJson(const std::string& label, const std::string& json) {
  const char* env = std::getenv("BD_STAGE_JSON");
  if (env == nullptr || *env == '\0') return;
  std::string line =
      "{\"label\":\"" + JsonEscape(label) + "\",\"metrics\":" + json + "}\n";
  const std::string target(env);
  if (target == "-" || target == "stdout") {
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fflush(stdout);
    return;
  }
  std::FILE* f = std::fopen(target.c_str(), "a");
  if (f == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
}

std::string Secs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

std::string WithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int lead = static_cast<int>(digits.size() % 3);
  for (int i = 0; i < static_cast<int>(digits.size()); ++i) {
    if (i != 0 && (i - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace bench
}  // namespace bigdansing
