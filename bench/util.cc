#include "bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <set>

#include "common/lineage.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "obs/http_server.h"
#include "obs/profiler.h"
#include "obs/quality.h"

namespace bigdansing {
namespace bench {

namespace {

/// Static-initializer bootstrap: every bench links util.cc, so the
/// observability env vars take effect without touching each main(). The
/// destructor flushes at normal exit (after main returns), then shuts the
/// live plane down — the server and sampler stop here, NOT inside
/// FlushObservability, which benches may call mid-run.
struct ObservabilityBootstrap {
  ObservabilityBootstrap() { InitObservabilityFromEnv(); }
  ~ObservabilityBootstrap() {
    FlushObservability();
    Profiler::Instance().Stop();
    ObsServer::Instance().Stop();
  }
};
ObservabilityBootstrap g_observability_bootstrap;

}  // namespace

namespace {

/// Env var set to a non-empty value.
const char* EnvPath(const char* name) {
  const char* value = std::getenv(name);
  return (value != nullptr && *value != '\0') ? value : nullptr;
}

/// Writes `text` to `path` ("-"/"stdout" -> stdout); warns on failure.
void WriteTextFile(const char* path, const std::string& text,
                   const char* what) {
  const std::string target(path);
  if (target == "-" || target == "stdout") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    BD_LOG(Warning) << "failed to write " << what << " to " << path;
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

}  // namespace

void InitObservabilityFromEnv() {
  InitLoggingFromEnv();
  const char* trace_path = std::getenv("BD_TRACE_JSON");
  const char* explain = std::getenv("BD_EXPLAIN");
  const bool want_explain =
      explain != nullptr && *explain != '\0' && std::string(explain) != "0";
  if ((trace_path != nullptr && *trace_path != '\0') || want_explain) {
    TraceRecorder::Instance().set_enabled(true);
  }
  // BD_LINEAGE_JSONL=<path> turns the repair lineage ledger on; the ledger
  // is written to <path> by FlushObservability.
  if (EnvPath("BD_LINEAGE_JSONL") != nullptr) {
    LineageRecorder::Instance().set_enabled(true);
  }
  // BD_QUALITY_JSONL=<path> turns the data-quality recorder on; the run
  // history is written to <path> by FlushObservability.
  if (EnvPath("BD_QUALITY_JSONL") != nullptr) {
    QualityRecorder::Instance().set_enabled(true);
  }
  // Live observability plane: BD_OBS_PORT serves /metrics, /stages,
  // /explain, /healthz and /profilez over HTTP for the duration of the
  // process; BD_PROFILE_HZ / BD_PROFILE_FOLDED start the sampling profiler
  // even without a server.
  ObsServer::StartFromEnv();
  Profiler::StartFromEnv();
}

void FlushObservability() {
  // Lineage ledger and metrics-registry snapshots flush independently of
  // the trace recorder (each has its own enabling env var).
  const char* lineage_path = EnvPath("BD_LINEAGE_JSONL");
  LineageRecorder& lineage = LineageRecorder::Instance();
  if (lineage_path != nullptr && lineage.enabled()) {
    const std::string target(lineage_path);
    if (target == "-" || target == "stdout") {
      const std::string text = lineage.ToJsonl();
      std::fwrite(text.data(), 1, text.size(), stdout);
      std::fflush(stdout);
    } else if (!lineage.WriteJsonl(target)) {
      BD_LOG(Warning) << "failed to write lineage ledger to " << target;
    }
  }
  // Quality run history (BD_QUALITY_JSONL); the recorder keeps running so
  // mid-run flushes only export the runs completed so far.
  QualityRecorder::WriteJsonlFromEnv();
  const char* metrics_path = EnvPath("BD_METRICS_JSON");
  if (metrics_path != nullptr) {
    WriteTextFile(metrics_path, MetricsRegistry::Instance().ToJson() + "\n",
                  "metrics registry snapshot");
  }
  const char* prom_path = EnvPath("BD_METRICS_PROM");
  if (prom_path != nullptr) {
    WriteTextFile(prom_path, MetricsRegistry::Instance().ToPrometheusText(),
                  "metrics registry text exposition");
  }
  // Folded-stack profile (BD_PROFILE_FOLDED); the sampler keeps running —
  // only the bootstrap destructor stops it, so mid-run flushes are safe.
  Profiler::WriteFoldedFromEnv();

  TraceRecorder& trace = TraceRecorder::Instance();
  if (!trace.enabled() || trace.SpanCount() == 0) return;
  const char* trace_path = std::getenv("BD_TRACE_JSON");
  if (trace_path != nullptr && *trace_path != '\0') {
    if (!trace.WriteChromeTrace(trace_path)) {
      BD_LOG(Warning) << "failed to write Chrome trace to " << trace_path;
    }
  }
  const char* explain = std::getenv("BD_EXPLAIN");
  if (explain != nullptr && *explain != '\0' && std::string(explain) != "0") {
    std::string tree = trace.ExplainTree();
    std::fwrite(tree.data(), 1, tree.size(), stdout);
    std::fflush(stdout);
  }
}

double EnvScale() {
  const char* env = std::getenv("BD_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

size_t ScaledRows(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * EnvScale());
}

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ResultTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void ResultTable::Print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

void MaybeEmitStageJson(const std::string& label, const std::string& json) {
  const char* env = std::getenv("BD_STAGE_JSON");
  if (env == nullptr || *env == '\0') return;
  std::string line =
      "{\"label\":\"" + JsonEscape(label) + "\",\"metrics\":" + json + "}\n";
  const std::string target(env);
  if (target == "-" || target == "stdout") {
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fflush(stdout);
    return;
  }
  std::FILE* f = std::fopen(target.c_str(), "a");
  if (f == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
}

BenchRecord::BenchRecord(std::string bench, std::string label)
    : bench_(std::move(bench)), label_(std::move(label)) {}

void BenchRecord::AddConfig(std::string_view key, const std::string& value) {
  config_.Add(key, value);
}
void BenchRecord::AddConfig(std::string_view key, const char* value) {
  config_.Add(key, value);
}
void BenchRecord::AddConfig(std::string_view key, uint64_t value) {
  config_.Add(key, value);
}
void BenchRecord::AddConfig(std::string_view key, double value) {
  config_.Add(key, value);
}
void BenchRecord::AddConfig(std::string_view key, bool value) {
  config_.Add(key, value);
}

void BenchRecord::AddMetric(std::string_view key, uint64_t value) {
  metrics_.Add(key, value);
}
void BenchRecord::AddMetric(std::string_view key, double value) {
  metrics_.Add(key, value);
}
void BenchRecord::AddMetric(std::string_view key, const std::string& value) {
  metrics_.Add(key, value);
}

void BenchRecord::AddQuality(uint64_t violations, uint64_t fixes,
                             uint64_t unresolved, uint64_t iterations) {
  metrics_.Add("violations", violations);
  metrics_.Add("fixes", fixes);
  metrics_.Add("unresolved", unresolved);
  metrics_.Add("iterations", iterations);
}

void BenchRecord::CaptureMetrics(const Metrics& metrics) {
  metrics_.Add("simulated_wall_seconds", metrics.SimulatedWallSeconds());
  metrics_.Add("shuffled_records", metrics.shuffled_records());
  metrics_.Add("stages", metrics.stages());
  metrics_.Add("tasks", metrics.tasks());
  metrics_.Add("pairs_enumerated", metrics.pairs_enumerated());
  metrics_.Add("records_read", metrics.records_read());
}

bool BenchRecord::Emit() {
  JsonObjectBuilder record;
  record.Add("bench", bench_);
  record.Add("label", label_);
  record.AddRaw("config", config_.Build());
  record.AddRaw("metrics", metrics_.Build());
  record.AddRaw("registry", MetricsRegistry::Instance().ToJson());
  const std::string line = record.Build() + "\n";

  const char* dir = std::getenv("BD_BENCH_JSON_DIR");
  std::string target;
  if (dir != nullptr && *dir != '\0') {
    const std::string d(dir);
    if (d == "-" || d == "stdout") {
      std::fwrite(line.data(), 1, line.size(), stdout);
      std::fflush(stdout);
      return true;
    }
    target = d + "/";
  }
  target += "BENCH_" + bench_ + ".json";

  // First write to a file in this process truncates it, so a re-run never
  // mixes records with a previous invocation's.
  static std::mutex mu;
  static std::set<std::string>* truncated = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  const bool fresh = truncated->insert(target).second;
  std::FILE* f = std::fopen(target.c_str(), fresh ? "w" : "a");
  if (f == nullptr) {
    BD_LOG(Warning) << "failed to open bench record file " << target;
    return false;
  }
  const size_t written = std::fwrite(line.data(), 1, line.size(), f);
  return std::fclose(f) == 0 && written == line.size();
}

std::string Secs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

std::string WithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int lead = static_cast<int>(digits.size() % 3);
  for (int i = 0; i < static_cast<int>(digits.size()); ++i) {
    if (i != 0 && (i - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace bench
}  // namespace bigdansing
