// Reproduces Fig 8(a): end-to-end data cleansing time (detection + repair)
// for BigDansing vs NADEEF on rules ϕ1 (FD on TaxA), ϕ2 (DC on TaxB) and
// ϕ3 (FD on TPCH). Paper sizes 100K/1M (200K for ϕ2) are scaled down 10x;
// NADEEF is measured up to a quadratic cap and extrapolated ("~") beyond,
// mirroring the paper's observation that NADEEF could not finish larger
// inputs.
#include <cstdio>

#include "baselines/nadeef_baseline.h"
#include "bench_util.h"
#include "core/bigdansing.h"
#include "obs/quality.h"
#include "repair/equivalence_class.h"
#include "repair/hypergraph_repair.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr size_t kNadeefCap = 3000;

struct Scenario {
  const char* label;
  const char* rule;
  GeneratedData (*generate)(size_t, double, uint64_t);
  RepairMode mode;
  size_t sizes[2];
};

void Run() {
  ResultTable table(
      "Fig 8(a): end-to-end cleansing time (detect + repair) in seconds",
      {"rule", "rows", "BigDansing", "NADEEF", "violations(iter1)"});

  Scenario scenarios[] = {
      {"phi1 (FD TaxA)", "phi1: FD: zipcode -> city", &GenerateTaxA,
       RepairMode::kEquivalenceClass, {10000, 100000}},
      {"phi2 (DC TaxB)", "phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate",
       &GenerateTaxB, RepairMode::kHypergraph, {2000, 20000}},
      {"phi3 (FD TPCH)", "phi3: FD: o_custkey -> c_address", &GenerateTpch,
       RepairMode::kEquivalenceClass, {10000, 100000}},
  };

  for (const auto& s : scenarios) {
    for (size_t base : s.sizes) {
      size_t rows = ScaledRows(base);
      auto data = s.generate(rows, 0.1, /*seed=*/rows);

      ExecutionContext ctx(8);
      CleanOptions options;
      options.repair_mode = s.mode;
      BigDansing system(&ctx, options);
      Table working = data.dirty;
      size_t violations = 0;
      size_t iterations = 0;
      // The measured run includes the quality plane (profiler + per-rule
      // telemetry) — its overhead must stay inside the bench-regression
      // gate, which is exactly what this record tracks.
      QualityRecorder& quality_recorder = QualityRecorder::Instance();
      const bool quality_was_enabled = quality_recorder.enabled();
      quality_recorder.set_enabled(true);
      double bigdansing = TimeSeconds([&] {
        auto report = system.Clean(&working, {*ParseRule(s.rule)});
        if (report.ok() && !report->iterations.empty()) {
          violations = report->iterations[0].violations;
          iterations = report->num_iterations();
        }
      });
      QualityRunRecord quality_run;
      quality_recorder.LatestRun(&quality_run);
      quality_recorder.set_enabled(quality_was_enabled);
      bench::MaybeEmitStageJson(
          "fig8a:" + std::string(s.label) + ":rows=" + std::to_string(rows),
          ctx.metrics().ToJson());
      bench::BenchRecord record(
          "fig8a_end_to_end",
          std::string(s.label) + ":rows=" + std::to_string(rows));
      record.AddConfig("rule", s.rule);
      record.AddConfig("rows", static_cast<uint64_t>(rows));
      record.AddConfig("workers", static_cast<uint64_t>(8));
      record.AddMetric("wall_seconds", bigdansing);
      record.AddMetric("violations_iter1", static_cast<uint64_t>(violations));
      record.AddQuality(quality_run.TotalViolations(),
                        quality_run.TotalFixes(),
                        quality_run.TotalUnresolved(),
                        static_cast<uint64_t>(iterations));
      record.CaptureMetrics(ctx.metrics());
      record.Emit();

      // NADEEF: centralized, pair-at-a-time, capped + extrapolated.
      size_t capped = std::min(rows, kNadeefCap);
      auto capped_data =
          capped == rows ? data : s.generate(capped, 0.1, /*seed=*/capped);
      Table nadeef_working = capped_data.dirty;
      EquivalenceClassAlgorithm ec;
      HypergraphRepairAlgorithm hg;
      const RepairAlgorithm* algorithm =
          s.mode == RepairMode::kHypergraph
              ? static_cast<const RepairAlgorithm*>(&hg)
              : static_cast<const RepairAlgorithm*>(&ec);
      double nadeef = TimeSeconds([&] {
        NadeefClean(&nadeef_working, *ParseRule(s.rule), 10, algorithm);
      });
      std::string nadeef_cell;
      if (rows <= capped) {
        nadeef_cell = Secs(nadeef);
      } else {
        double f = static_cast<double>(rows) / static_cast<double>(capped);
        nadeef_cell = "~" + Secs(nadeef * f * f) + " (extrapolated)";
      }

      table.AddRow({s.label, bench::WithCommas(rows), Secs(bigdansing),
                    nadeef_cell, bench::WithCommas(violations)});
    }
  }
  table.Print();
  std::printf(
      "Expected shape (paper): BigDansing beats NADEEF by 2-3 orders of "
      "magnitude at the larger sizes; the gap is widest for the inequality "
      "DC phi2.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
