// Reproduces Fig 10(b): multi-node detection of the inequality DC ϕ2 on
// TaxB (16 workers). BigDansing-Spark uses OCJoin; Spark SQL and Shark pay
// the cross product (capped + extrapolated — in the paper both were killed
// after 4 hours). Paper sizes 1M/2M/3M scaled to 30K/60K/90K.
#include <cstdio>

#include "baselines/sql_baseline.h"
#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr size_t kQuadraticCap = 6000;
constexpr const char* kRule =
    "phi2: DC: t1.salary > t2.salary & t1.rate < t2.rate";
constexpr size_t kWorkers = 16;

std::string Extrapolate(double capped_seconds, size_t rows, size_t cap) {
  if (rows <= cap) return Secs(capped_seconds);
  double f = static_cast<double>(rows) / static_cast<double>(cap);
  return "~" + Secs(capped_seconds * f * f) + " (extrapolated)";
}

void Run() {
  ResultTable table(
      "Fig 10(b): TaxB phi2 (inequality DC), multi-node (16 workers), "
      "detection time in seconds",
      {"rows", "BigDansing-Spark", "SparkSQL", "Shark", "violations",
       "ocjoin pruning"});
  for (size_t base : {30000u, 60000u, 90000u}) {
    size_t rows = ScaledRows(base);
    auto data = GenerateTaxB(rows, 0.1, /*seed=*/rows);
    data.clean = Table();  // Ground truth is unused here; free the memory.

    ExecutionContext ctx(kWorkers);
    RuleEngine engine(&ctx);
    size_t violations = 0;
    OCJoinStats stats;
    double bigdansing = TimeSeconds([&] {
      auto r = engine.Detect(data.dirty, *ParseRule(kRule));
      if (r.ok()) {
        violations = r->violations.size();
        stats = r->ocjoin_stats;
      }
    });

    bench::BenchRecord record("fig10b_multinode_dc",
                              "rows=" + std::to_string(rows));
    record.AddConfig("rule", kRule);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(kWorkers));
    record.AddMetric("wall_seconds", bigdansing);
    record.AddMetric("violations", static_cast<uint64_t>(violations));
    record.CaptureMetrics(ctx.metrics());
    record.Emit();

    size_t capped = std::min(rows, kQuadraticCap);
    auto capped_data =
        capped == rows ? data : GenerateTaxB(capped, 0.1, /*seed=*/capped);
    double sparksql = TimeSeconds([&] {
      SqlBaselineDetect(&ctx, capped_data.dirty, *ParseRule(kRule),
                        SqlEngine::kSparkSql);
    });
    double shark = TimeSeconds([&] {
      SqlBaselineDetect(&ctx, capped_data.dirty, *ParseRule(kRule),
                        SqlEngine::kShark);
    });

    char pruning[64];
    std::snprintf(pruning, sizeof(pruning), "%zu/%zu pairs kept",
                  stats.partition_pairs_after_pruning,
                  stats.partition_pairs_total);
    table.AddRow({bench::WithCommas(rows), Secs(bigdansing),
                  Extrapolate(sparksql, rows, capped),
                  Extrapolate(shark, rows, capped),
                  bench::WithCommas(violations), pruning});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): BigDansing at least two orders of magnitude "
      "faster than Spark SQL and Shark, which cannot process the inequality "
      "join efficiently.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
