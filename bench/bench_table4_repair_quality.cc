// Reproduces Table 4: repair quality. Part 1 — equivalence-class repair on
// HAI for the rule combinations ϕ6 / ϕ6&ϕ7 / ϕ6-ϕ8: precision, recall and
// iteration count for BigDansing (parallel black-box repair) vs a
// NADEEF-style centralized repair. Part 2 — hypergraph repair of the DC φD
// on TaxB: total and per-error distance to the ground truth, again for
// both deployments. The paper's claim to check: the distributed repair
// matches the centralized repair's quality and iteration count.
#include <cstdio>

#include "bench_util.h"
#include "common/lineage.h"
#include "core/bigdansing.h"
#include "datagen/datagen.h"
#include "obs/quality.h"
#include "repair/quality.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;

std::string Pct(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void RunHai() {
  ResultTable table(
      "Table 4 (part 1): equivalence-class repair quality on HAI",
      {"rules", "system", "precision", "recall", "iterations"});
  const size_t rows = ScaledRows(12000);
  const std::vector<std::vector<const char*>> combos = {
      {"phi6: FD: zipcode -> state"},
      {"phi6: FD: zipcode -> state", "phi7: FD: phone -> zipcode"},
      {"phi6: FD: zipcode -> state", "phi7: FD: phone -> zipcode",
       "phi8: FD: provider_id -> city, phone"},
  };
  const char* combo_names[] = {"phi6", "phi6&phi7", "phi6-phi8"};
  // Each combination gets its own dirty dataset (as in the paper), with
  // errors only on the attributes the combination's FDs cover:
  // state(3) for phi6; + zipcode(4) for phi7; + city(2), phone(6) for phi8.
  const std::vector<std::vector<size_t>> corrupt_columns = {
      {3}, {3, 4}, {3, 4, 2, 6}};
  for (size_t c = 0; c < combos.size(); ++c) {
    auto data = GenerateHai(rows, 0.1, /*seed=*/c + 1, corrupt_columns[c]);
    std::vector<RulePtr> rules;
    for (const char* text : combos[c]) rules.push_back(*ParseRule(text));

    for (bool parallel : {true, false}) {
      ExecutionContext ctx(16);
      CleanOptions options;
      options.repair.parallel = parallel;
      BigDansing system(&ctx, options);
      Table working = data.dirty;
      // Precision/recall come from the repair lineage ledger (the
      // authoritative record of what the cleanse driver changed), not from
      // a dirty-vs-repaired table diff. The recorder is process-wide, so
      // clear it per run and scope it to this Clean() call.
      LineageRecorder& lineage = LineageRecorder::Instance();
      const bool was_enabled = lineage.enabled();
      lineage.set_enabled(true);
      lineage.Clear();
      // The quality plane observes the same run: its per-rule totals must
      // reconcile bit-exactly with the ledger and the CleanReport.
      QualityRecorder& quality_recorder = QualityRecorder::Instance();
      const bool quality_was_enabled = quality_recorder.enabled();
      quality_recorder.set_enabled(true);
      auto report = system.Clean(&working, rules);
      std::vector<LineageEntry> entries = lineage.Entries();
      lineage.set_enabled(was_enabled);
      QualityRunRecord quality_run;
      const bool have_quality_run = quality_recorder.LatestRun(&quality_run);
      quality_recorder.set_enabled(quality_was_enabled);
      if (!report.ok()) {
        std::fprintf(stderr, "clean failed: %s\n",
                     report.status().ToString().c_str());
        continue;
      }
      auto quality =
          EvaluateRepairFromLineage(entries, data.dirty, data.clean);
      if (!quality.ok()) continue;
      if (have_quality_run &&
          quality_run.TotalFixes() != static_cast<uint64_t>(quality->updates)) {
        std::fprintf(stderr,
                     "quality/lineage mismatch: recorder fixes=%llu "
                     "ledger updates=%zu\n",
                     static_cast<unsigned long long>(quality_run.TotalFixes()),
                     quality->updates);
      }
      bench::BenchRecord record(
          "table4_repair_quality",
          std::string(combo_names[c]) + ":" +
              (parallel ? "parallel" : "centralized"));
      record.AddConfig("rows", static_cast<uint64_t>(rows));
      record.AddConfig("workers", static_cast<uint64_t>(16));
      record.AddConfig("parallel", parallel);
      record.AddMetric("precision", quality->precision);
      record.AddMetric("recall", quality->recall);
      record.AddQuality(quality_run.TotalViolations(),
                        static_cast<uint64_t>(quality->updates),
                        quality_run.TotalUnresolved(),
                        static_cast<uint64_t>(report->num_iterations()));
      record.CaptureMetrics(ctx.metrics());
      record.Emit();
      table.AddRow({combo_names[c],
                    parallel ? "BigDansing" : "NADEEF (centralized)",
                    Pct(quality->precision), Pct(quality->recall),
                    std::to_string(report->num_iterations())});
    }
  }
  table.Print();
}

void RunTaxB() {
  ResultTable table(
      "Table 4 (part 2): hypergraph repair quality on TaxB (DC phiD)",
      {"system", "|R,G|", "|R,G|/e", "|D,G|", "|D,G|/e", "iterations"});
  const size_t rows = ScaledRows(5000);
  auto data = GenerateTaxB(rows, 0.1, /*seed=*/9);
  auto rule = "phiD: DC: t1.salary > t2.salary & t1.rate < t2.rate";
  for (bool parallel : {true, false}) {
    ExecutionContext ctx(16);
    CleanOptions options;
    options.repair_mode = RepairMode::kHypergraph;
    options.repair.parallel = parallel;
    BigDansing system(&ctx, options);
    Table working = data.dirty;
    QualityRecorder& quality_recorder = QualityRecorder::Instance();
    const bool quality_was_enabled = quality_recorder.enabled();
    quality_recorder.set_enabled(true);
    auto report = system.Clean(&working, {*ParseRule(rule)});
    QualityRunRecord quality_run;
    quality_recorder.LatestRun(&quality_run);
    quality_recorder.set_enabled(quality_was_enabled);
    if (!report.ok()) {
      std::fprintf(stderr, "clean failed: %s\n",
                   report.status().ToString().c_str());
      continue;
    }
    auto distance = EvaluateRepairDistance(data.dirty, working, data.clean,
                                           "rate");
    if (!distance.ok()) continue;
    bench::BenchRecord record(
        "table4_repair_quality",
        std::string("phiD:") + (parallel ? "parallel" : "centralized"));
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(16));
    record.AddConfig("parallel", parallel);
    record.AddMetric("repaired_distance", distance->repaired_distance);
    record.AddMetric("dirty_distance", distance->dirty_distance);
    record.AddQuality(quality_run.TotalViolations(), quality_run.TotalFixes(),
                      quality_run.TotalUnresolved(),
                      static_cast<uint64_t>(report->num_iterations()));
    record.CaptureMetrics(ctx.metrics());
    record.Emit();
    char total[32], avg[32], dtotal[32], davg[32];
    std::snprintf(total, sizeof(total), "%.2f", distance->repaired_distance);
    std::snprintf(avg, sizeof(avg), "%.4f", distance->avg_repaired_distance);
    std::snprintf(dtotal, sizeof(dtotal), "%.2f", distance->dirty_distance);
    std::snprintf(davg, sizeof(davg), "%.4f", distance->avg_dirty_distance);
    table.AddRow({parallel ? "BigDansing" : "NADEEF (centralized)", total,
                  avg, dtotal, davg, std::to_string(report->num_iterations())});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): the distributed repairs match the "
      "centralized ones — same precision/recall (part 1), same distances "
      "(part 2), same iteration counts.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::RunHai();
  bigdansing::RunTaxB();
  return 0;
}
