// Reproduces Fig 12(b): parallel (per-connected-component) repair vs the
// centralized serial repair, on TaxA ϕ1 (paper size 1M scaled to 100K),
// sweeping the error rate. Detection runs once per rate; only the repair
// phase is timed.
#include <cstdio>

#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "repair/blackbox.h"
#include "repair/equivalence_class.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

void Run() {
  ResultTable table(
      "Fig 12(b): parallel vs serial repair time by error rate (TaxA phi1)",
      {"error rate", "parallel repair sim-cluster (s)",
       "serial repair (s)", "components", "violations"});
  const size_t rows = ScaledRows(100000);
  EquivalenceClassAlgorithm ec;
  for (double rate : {0.01, 0.05, 0.10, 0.50}) {
    auto data = GenerateTaxA(rows, rate, /*seed=*/31);
    ExecutionContext ctx(16);
    RuleEngine engine(&ctx);
    auto detection =
        engine.Detect(data.dirty, *ParseRule("phi1: FD: zipcode -> city"));
    if (!detection.ok()) continue;
    const auto& violations = detection->violations;

    // Simulated cluster time (busiest worker's CPU): on this host the pool
    // may have more workers than cores, so wall time cannot show the
    // distribution win — per-slot CPU accounting does (see Fig 11(a)).
    ctx.metrics().Reset();
    BlackBoxOptions parallel_options;
    size_t components = 0;
    auto r = BlackBoxRepair(&ctx, violations, ec, parallel_options);
    components = r.num_components;
    double parallel = ctx.metrics().SimulatedWallSeconds();
    bench::MaybeEmitStageJson(
        "fig12b:rate=" + std::to_string(static_cast<int>(rate * 100)),
        ctx.metrics().ToJson());
    bench::BenchRecord record(
        "fig12b_repair_scaling",
        "error_rate=" + std::to_string(static_cast<int>(rate * 100)) + "%");
    record.AddConfig("rule", "phi1: FD: zipcode -> city");
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("error_rate", rate);
    record.AddConfig("workers", static_cast<uint64_t>(16));
    record.AddMetric("wall_seconds", parallel);
    record.AddMetric("components", static_cast<uint64_t>(components));
    record.AddMetric("violations", static_cast<uint64_t>(violations.size()));
    record.AddMetric("fixes", static_cast<uint64_t>(r.applied.size()));
    record.CaptureMetrics(ctx.metrics());
    record.Emit();

    ctx.metrics().Reset();
    BlackBoxOptions serial_options;
    serial_options.parallel = false;
    BlackBoxRepair(&ctx, violations, ec, serial_options);
    double serial = ctx.metrics().SimulatedWallSeconds();

    table.AddRow({std::to_string(static_cast<int>(rate * 100)) + "%",
                  Secs(parallel), Secs(serial), bench::WithCommas(components),
                  bench::WithCommas(violations.size())});
  }
  table.Print();
  std::printf(
      "Expected shape (paper): the parallel repair wins except at the very "
      "smallest error rate, and its advantage grows with the violation "
      "count (more connected components to spread over workers).\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
