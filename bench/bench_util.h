#ifndef BIGDANSING_BENCH_BENCH_UTIL_H_
#define BIGDANSING_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_writer.h"
#include "common/stopwatch.h"
#include "dataflow/metrics.h"

namespace bigdansing {
namespace bench {

/// Times one invocation of `fn` in seconds (wall clock).
inline double TimeSeconds(const std::function<void()>& fn) {
  Stopwatch sw;
  fn();
  return sw.ElapsedSeconds();
}

/// Dataset scale multiplier from the BD_SCALE environment variable
/// (default 1.0). Benches multiply their default row counts by this, so
/// `BD_SCALE=10 ./bench_fig9a_taxa_fd` runs a 10x larger sweep.
double EnvScale();

/// Row-count helper applying EnvScale().
size_t ScaledRows(size_t base);

/// A column-aligned results table matching the figure's series, e.g.
///
///   == Fig 9(a): TaxA phi1, single node, detection time (s) ==
///   rows     BigDansing  SparkSQL  PostgreSQL  NADEEF  Shark
///   10000    0.12        0.15      0.08        4.31    9.20
///
/// Cells are free-form strings so "capped" / "n/a" entries are possible.
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns);

  /// Adds one row; missing cells render empty.
  void AddRow(std::vector<std::string> cells);

  /// Renders to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Emits the context's metrics (totals + per-stage StageReport breakdown)
/// as one JSON object labelled `label`, honouring the BD_STAGE_JSON
/// environment variable: unset -> no-op, "-" or "stdout" -> print to
/// stdout, any other value -> append one line to that file path. Benches
/// call this after each measured configuration, passing
/// `ctx.metrics().ToJson()` as `json`.
void MaybeEmitStageJson(const std::string& label, const std::string& json);

/// One standardized bench result: every bench emits one BenchRecord per
/// measured configuration, so all 20 binaries produce machine-readable
/// output with identical field names (the regression checker and the CI
/// baseline both key on them — do not invent per-bench variants).
///
/// The record renders as ONE line of strict JSON:
///
///   {"bench":"fig9a_taxa_fd","label":"rows=10000",
///    "config":{...},"metrics":{...},"registry":{...}}
///
/// `config` holds the knobs of the run (row counts, workers, mode flags);
/// `metrics` the measured outcomes. CaptureMetrics() fills the standardized
/// dataflow fields (simulated_wall_seconds, shuffled_records, stages,
/// tasks, pairs_enumerated); wall_seconds / violations / fixes are added by
/// the bench via AddMetric with exactly those names. `registry` is the
/// process-wide MetricsRegistry snapshot taken at Emit() time.
///
/// Emit() appends the line to BENCH_<bench>.json in the directory named by
/// BD_BENCH_JSON_DIR (default: current directory; "-" or "stdout" sends
/// lines to stdout instead). The first Emit() for a given file in a process
/// truncates it, so re-runs do not accumulate stale records.
class BenchRecord {
 public:
  /// `bench` is the binary's stable short name ("fig9a_taxa_fd");
  /// `label` distinguishes configurations within it ("rows=10000").
  BenchRecord(std::string bench, std::string label);

  void AddConfig(std::string_view key, const std::string& value);
  void AddConfig(std::string_view key, const char* value);
  void AddConfig(std::string_view key, uint64_t value);
  void AddConfig(std::string_view key, double value);
  void AddConfig(std::string_view key, bool value);

  void AddMetric(std::string_view key, uint64_t value);
  void AddMetric(std::string_view key, double value);
  void AddMetric(std::string_view key, const std::string& value);

  /// Standardized dataflow counters from one run's Metrics:
  /// simulated_wall_seconds, shuffled_records, stages, tasks,
  /// pairs_enumerated, records_read.
  void CaptureMetrics(const Metrics& metrics);

  /// Standardized data-quality outcome of one Clean() run: the metric keys
  /// "violations", "fixes", "unresolved" and "iterations". Benches that
  /// measure repair quality use this instead of ad-hoc AddMetric calls so
  /// every record spells the fields identically (the JSON builder does not
  /// deduplicate keys — never AddMetric the same names separately).
  void AddQuality(uint64_t violations, uint64_t fixes, uint64_t unresolved,
                  uint64_t iterations);

  /// Writes the record as one line; returns false on I/O failure.
  bool Emit();

 private:
  std::string bench_;
  std::string label_;
  JsonObjectBuilder config_;
  JsonObjectBuilder metrics_;
};

/// Applies the observability environment variables shared by every bench:
/// BD_LOG_LEVEL (logger threshold), BD_TRACE_JSON=<path> (enables the
/// TraceRecorder; the Chrome trace is written to <path> by
/// FlushObservability), BD_EXPLAIN=1 (prints the runtime EXPLAIN tree at
/// exit), BD_OBS_PORT=<port> (live HTTP observability endpoint for the
/// process lifetime), BD_PROFILE_HZ / BD_PROFILE_FOLDED (sampling
/// profiler), BD_LINEAGE_JSONL=<path> (repair lineage ledger) and
/// BD_QUALITY_JSONL=<path> (data-quality run history; enables the
/// QualityRecorder). Runs automatically before main() in every binary
/// linking this file; calling it again is harmless.
void InitObservabilityFromEnv();

/// Writes the Chrome trace (BD_TRACE_JSON), the folded-stack profile
/// (BD_PROFILE_FOLDED) and prints the EXPLAIN tree (BD_EXPLAIN) if
/// requested. Runs automatically at normal process exit; benches may also
/// call it directly to snapshot mid-run (the live server and sampler keep
/// running — they stop only at process exit).
void FlushObservability();

/// "%.3f" seconds formatting.
std::string Secs(double seconds);

/// Integer with thousands groups ("1,234,567").
std::string WithCommas(uint64_t value);

}  // namespace bench
}  // namespace bigdansing

#endif  // BIGDANSING_BENCH_BENCH_UTIL_H_
