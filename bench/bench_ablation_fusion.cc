// Ablation: operator fusion in the deferred dataflow layer.
//
// A Map -> Filter -> Map chain over string-bearing records is executed two
// ways on identical input:
//
//  - eager:  every transformation is forced (materialized) before the next
//    one is applied — three stages, two intermediate partition vectors,
//    three Hadoop-style materialization charges. This is what the engine
//    did before pipelines became deferred.
//  - fused:  the chain stays deferred and collapses into one per-partition
//    pass when the action forces it — one stage, no intermediates.
//
// Both produce bit-identical partitions; the bench verifies that, prints
// wall time and the recorded stage count for each mode, and always dumps
// the per-stage JSON breakdown so the fused stage's combined label
// ("...|scale|filter|render") is visible.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dataflow/dataset.h"

namespace bigdansing {
namespace {

using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

/// A record heavy enough that materializing intermediates costs real
/// memory traffic (string payload + a few scalars), like the engine's
/// per-tuple Row values.
struct Record {
  uint64_t id = 0;
  double score = 0.0;
  std::string payload;

  bool operator==(const Record& other) const {
    return id == other.id && score == other.score && payload == other.payload;
  }
};

std::vector<Record> MakeInput(size_t n) {
  std::vector<Record> input;
  input.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Record r;
    r.id = i;
    r.score = static_cast<double>(i % 997);
    r.payload = "record-" + std::to_string(i * 2654435761u % 100000);
    input.push_back(std::move(r));
  }
  return input;
}

Record Scale(const Record& r) {
  Record out = r;
  out.score = r.score * 1.5 + 1.0;
  return out;
}

bool Keep(const Record& r) { return (r.id & 3) != 0; }

std::string Render(const Record& r) {
  return r.payload + ":" + std::to_string(static_cast<uint64_t>(r.score));
}

void Run() {
  const size_t rows = ScaledRows(1000000);
  const size_t kPartitions = 16;
  const auto input = MakeInput(rows);

  // --- Eager: force after every step, as the pre-refactor engine did. ---
  ExecutionContext eager_ctx(kPartitions);
  std::vector<std::string> eager_result;
  double eager_wall = TimeSeconds([&] {
    auto ds = Dataset<Record>::FromVector(&eager_ctx, input, kPartitions);
    auto scaled = ds.Map(Scale, "scale");
    scaled.Count();  // Materialization barrier after step 1.
    auto kept = scaled.Filter(Keep, "filter");
    kept.Count();  // Barrier after step 2.
    auto rendered = kept.Map(Render, "render");
    rendered.Count();  // Barrier after step 3.
    eager_result = rendered.Collect();
  });
  const uint64_t eager_stages = eager_ctx.metrics().stages();

  // --- Fused: the same chain, deferred end to end. ---
  ExecutionContext fused_ctx(kPartitions);
  std::vector<std::string> fused_result;
  double fused_wall = TimeSeconds([&] {
    auto rendered = Dataset<Record>::FromVector(&fused_ctx, input, kPartitions)
                        .Map(Scale, "scale")
                        .Filter(Keep, "filter")
                        .Map(Render, "render");
    fused_result = rendered.Collect();
  });
  const uint64_t fused_stages = fused_ctx.metrics().stages();

  const bool identical = eager_result == fused_result;

  std::printf("\n== Ablation: operator fusion (Map -> Filter -> Map, %s "
              "records, %zu partitions) ==\n",
              bench::WithCommas(rows).c_str(), kPartitions);
  std::printf("eager (force per step): %s s, %llu stages\n", Secs(eager_wall).c_str(),
              static_cast<unsigned long long>(eager_stages));
  std::printf("fused (single pass):    %s s, %llu stages\n", Secs(fused_wall).c_str(),
              static_cast<unsigned long long>(fused_stages));
  std::printf("speedup: %.2fx   results identical: %s\n",
              fused_wall > 0 ? eager_wall / fused_wall : 0.0,
              identical ? "yes" : "NO (BUG)");
  std::printf("\nfused per-stage breakdown:\n%s\n",
              fused_ctx.metrics().StageReportsJson().c_str());
  std::printf("\neager per-stage breakdown:\n%s\n",
              eager_ctx.metrics().StageReportsJson().c_str());
  bench::MaybeEmitStageJson("ablation_fusion:fused",
                            fused_ctx.metrics().ToJson());
  bench::BenchRecord record("ablation_fusion", "rows=" + std::to_string(rows));
  record.AddConfig("rows", static_cast<uint64_t>(rows));
  record.AddConfig("partitions", static_cast<uint64_t>(kPartitions));
  record.AddMetric("wall_seconds", fused_wall);
  record.AddMetric("eager_seconds", eager_wall);
  record.AddMetric("fused_stages", fused_stages);
  record.AddMetric("eager_stages", eager_stages);
  record.CaptureMetrics(fused_ctx.metrics());
  record.Emit();
  std::printf(
      "\nExpected shape: the fused chain records 1 stage where the eager "
      "chain records 3, skips two intermediate materializations, and is "
      "measurably faster.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
