// Reproduces Fig 11(b): deduplication with a UDF rule (Levenshtein
// similarity on name + phone) on NCVoter / customer1 / customer2.
// BigDansing runs the UDF with blocking; "Shark" runs the same UDF as a
// cross product with post-filter (Spark SQL is absent, as in the paper:
// it cannot run UDFs directly). Paper sizes (9M/19M/32M) are scaled to
// tens of thousands; quadratic Shark is capped + extrapolated.
#include <cstdio>

#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/similarity.h"
#include "rules/udf_rule.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

constexpr size_t kQuadraticCap = 4000;

/// Builds the dedup UDF rule of the paper's §6.5: two rows are duplicates
/// when their names are Levenshtein-similar and their phones are similar.
/// Blocking key: the first two characters of the name (the role the
/// getCounty() mapping plays for φU).
std::shared_ptr<UdfRule> MakeDedupRule(size_t name_col, size_t phone_col,
                                       bool with_blocking) {
  auto rule = std::make_shared<UdfRule>("dedup");
  rule->set_symmetric(true).set_detect(
      [name_col, phone_col](const Schema& schema, const Row& a, const Row& b,
                            std::vector<Violation>* out) {
        const std::string na = a.value(name_col).ToString();
        const std::string nb = b.value(name_col).ToString();
        if (!IsSimilar(na, nb, 0.8)) return;
        const std::string pa = a.value(phone_col).ToString();
        const std::string pb = b.value(phone_col).ToString();
        if (!IsSimilar(pa, pb, 0.7)) return;
        Violation v;
        v.rule_name = "dedup";
        v.cells.push_back(UdfRule::MakeUdfCell(a, name_col, schema));
        v.cells.push_back(UdfRule::MakeUdfCell(b, name_col, schema));
        out->push_back(std::move(v));
      });
  if (with_blocking) {
    rule->set_block_key([name_col](const Schema&, const Row& row) {
      std::string name = row.value(name_col).ToString();
      if (name.size() < 2) return Value(name);
      return Value(name.substr(0, 2));
    });
  }
  return rule;
}

void RunOne(ResultTable* table, const char* label, const Table& data,
            size_t name_col, size_t phone_col, size_t injected_pairs) {
  size_t rows = data.num_rows();
  ExecutionContext ctx(16);
  RuleEngine engine(&ctx);
  size_t found = 0;
  double bigdansing = TimeSeconds([&] {
    auto r = engine.Detect(data, MakeDedupRule(name_col, phone_col, true));
    found = r.ok() ? r->violations.size() : 0;
  });

  bench::BenchRecord record("fig11b_dedup", std::string("dataset=") + label);
  record.AddConfig("dataset", label);
  record.AddConfig("rows", static_cast<uint64_t>(rows));
  record.AddConfig("workers", static_cast<uint64_t>(16));
  record.AddMetric("wall_seconds", bigdansing);
  record.AddMetric("violations", static_cast<uint64_t>(found));
  record.CaptureMetrics(ctx.metrics());
  record.Emit();

  // Shark: UDF over a cross product (no blocking, pair materialization).
  size_t capped_rows = std::min(rows, kQuadraticCap);
  Table capped(data.schema());
  for (size_t i = 0; i < capped_rows; ++i) capped.AppendRowWithId(data.row(i));
  PlannerOptions shark_options;
  shark_options.enable_blocking = false;
  shark_options.enable_ucross_product = false;
  RuleEngine shark_engine(&ctx, shark_options);
  double shark = TimeSeconds([&] {
    shark_engine.Detect(capped, MakeDedupRule(name_col, phone_col, false));
  });
  std::string shark_cell;
  if (rows <= capped_rows) {
    shark_cell = Secs(shark);
  } else {
    double f = static_cast<double>(rows) / static_cast<double>(capped_rows);
    shark_cell = "~" + Secs(shark * f * f) + " (extrapolated)";
  }

  table->AddRow({label, bench::WithCommas(rows), Secs(bigdansing), shark_cell,
                 bench::WithCommas(found), bench::WithCommas(injected_pairs)});
}

void Run() {
  ResultTable table(
      "Fig 11(b): deduplication with a Levenshtein UDF, detection time in "
      "seconds (16 workers)",
      {"dataset", "rows", "BigDansing", "Shark", "pairs found",
       "pairs injected"});

  auto ncvoter = GenerateNcVoter(ScaledRows(10000), 0.02, 1);
  RunOne(&table, "ncvoter", ncvoter.table, 1, 4,
         ncvoter.fuzzy_pairs.size());

  auto cust1 = GenerateCustomerDedup(ScaledRows(3000), /*exact_copies=*/2,
                                     /*fuzzy_rate=*/0.02, 2);
  RunOne(&table, "customer1 (3x)", cust1.table, 1, 3,
         cust1.exact_pairs.size() + cust1.fuzzy_pairs.size());

  auto cust2 = GenerateCustomerDedup(ScaledRows(3000), /*exact_copies=*/4,
                                     /*fuzzy_rate=*/0.02, 3);
  RunOne(&table, "customer2 (5x)", cust2.table, 1, 3,
         cust2.exact_pairs.size() + cust2.fuzzy_pairs.size());

  table.Print();
  std::printf(
      "Expected shape (paper): BigDansing beats Shark on every dataset, by "
      "up to ~67x on the largest (customer2), thanks to UDF blocking. "
      "'pairs found' exceeds 'pairs injected' when duplicate groups of size "
      ">2 yield multiple pair matches.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
