// Ablation: columnar detect kernels vs the interpreted rule engine.
//
// The same detections run two ways over the same data:
//
//  - interpreted: BD_KERNELS=0 semantics — Block hashes Value objects row
//    by row and Detect re-evaluates each candidate pair through
//    Rule::Detect's virtual dispatch and Value comparisons.
//  - kernel: the default path — blocking/predicate columns are
//    dictionary-encoded once (dense u32 codes, pool-precomputed hashes)
//    and a compiled DetectKernel filters candidate pairs with branch-light
//    integer loops; Rule::Detect materializes violations only for matches.
//
// Output must be bit-identical (the kernel is a pure decision filter that
// preserves enumeration order); the bench verifies that and reports the
// simulated-wall speedup per workload, plus a microbench of the
// dictionary-encode cost in ns/row — the price paid before the kernel can
// run at all.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/rule_engine.h"
#include "data/dictionary.h"
#include "datagen/datagen.h"
#include "obs/profiler.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

/// Publishes the bench's own driver-side phases (datagen, fingerprint
/// verification) to the sampling profiler, so a profiled run attributes
/// those samples instead of reporting workers as idle.
template <typename Fn>
auto DriverPhase(const char* stage, Fn&& fn) {
  ScopedActivity activity(Profiler::Instance().Intern(stage, "driver"), 0, 0);
  return fn();
}

/// Order-sensitive fingerprint of a detection result: violation stream,
/// cells and fixes in emission order. Equal strings ⇒ bit-identical runs.
std::string Fingerprint(const DetectionResult& result) {
  std::string out;
  auto cell = [&](const Cell& c) {
    out += std::to_string(c.ref.row_id) + "." + std::to_string(c.ref.column) +
           "=" + c.value.ToString() + ";";
  };
  for (const auto& vf : result.violations) {
    out += vf.violation.rule_name + ":";
    for (const auto& c : vf.violation.cells) cell(c);
    for (const auto& fix : vf.fixes) {
      cell(fix.left);
      out += FixOpName(fix.op);
      if (fix.right.is_cell) {
        cell(fix.right.cell);
      } else {
        out += fix.right.constant.ToString();
      }
    }
    out += "\n";
  }
  return out;
}

struct ModeRun {
  double wall = 0;
  double sim_wall = 0;
  uint64_t violations = 0;
  uint64_t detect_calls = 0;
  std::string fingerprint;
};

ModeRun RunMode(ExecutionContext& ctx, const Table& table, const RulePtr& rule,
                bool kernels) {
  ctx.set_kernels_enabled(kernels);
  RuleEngine engine(&ctx);
  ModeRun run;
  run.wall = TimeSeconds([&] {
    auto result = engine.Detect(table, rule);
    if (!result.ok()) {
      std::fprintf(stderr, "detect failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    run.violations = result->violations.size();
    run.detect_calls = result->detect_calls;
    run.fingerprint =
        DriverPhase("bench:verify", [&] { return Fingerprint(*result); });
  });
  run.sim_wall = ctx.metrics().SimulatedWallSeconds();
  return run;
}

void RunWorkload(const char* key, const char* rule_text, const Table& table,
                 size_t workers) {
  auto rule = *ParseRule(rule_text);
  ExecutionContext interp_ctx(workers);
  ExecutionContext kernel_ctx(workers);
  ModeRun interp = RunMode(interp_ctx, table, rule, /*kernels=*/false);
  ModeRun kernel = RunMode(kernel_ctx, table, rule, /*kernels=*/true);

  const bool identical = interp.fingerprint == kernel.fingerprint &&
                         interp.detect_calls == kernel.detect_calls;
  const double speedup =
      kernel.sim_wall > 0 ? interp.sim_wall / kernel.sim_wall : 0.0;

  std::printf("%-3s %s\n", key, rule_text);
  std::printf("  interpreted: sim wall %s s (real %s s), %llu violations\n",
              Secs(interp.sim_wall).c_str(), Secs(interp.wall).c_str(),
              static_cast<unsigned long long>(interp.violations));
  std::printf("  kernel:      sim wall %s s (real %s s), %llu violations\n",
              Secs(kernel.sim_wall).c_str(), Secs(kernel.wall).c_str(),
              static_cast<unsigned long long>(kernel.violations));
  std::printf("  sim-wall speedup: %.2fx   bit-identical: %s\n\n", speedup,
              identical ? "yes" : "NO (BUG)");

  bench::BenchRecord record("ablation_kernels",
                            std::string(key) + "_rows=" +
                                std::to_string(table.rows().size()));
  record.AddConfig("workload", key);
  record.AddConfig("rule", rule_text);
  record.AddConfig("rows", static_cast<uint64_t>(table.rows().size()));
  record.AddConfig("workers", static_cast<uint64_t>(workers));
  record.AddMetric("wall_seconds", kernel.wall);
  record.AddMetric("interpreted_wall_seconds", interp.wall);
  record.AddMetric("interpreted_sim_wall_seconds", interp.sim_wall);
  record.AddMetric("kernel_sim_wall_seconds", kernel.sim_wall);
  record.AddMetric("sim_wall_speedup", speedup);
  record.AddMetric("violations", interp.violations);
  record.AddMetric("detect_calls", interp.detect_calls);
  record.AddMetric("identical", identical ? "yes" : "no");
  // simulated_wall_seconds (the checker's keyed metric) is the kernel run's.
  record.CaptureMetrics(kernel_ctx.metrics());
  record.Emit();
}

void RunEncodeMicrobench(const Table& table, size_t workers) {
  ExecutionContext ctx(workers);
  Dataset<Row> rows = Dataset<Row>::FromVector(&ctx, table.rows());
  // zipcode(1), city(2), state(3): the key columns of the FD workloads.
  const std::vector<std::vector<size_t>> groups = {{1}, {2}, {3}};
  EncodedColumnSet encoded;
  double wall = TimeSeconds([&] { encoded = EncodeColumns(rows, groups); });
  const double ns_per_row =
      encoded.rows > 0 ? wall * 1e9 / static_cast<double>(encoded.rows) : 0.0;
  uint64_t pool_values = 0;
  for (const auto& [col, column] : encoded.columns) {
    (void)col;
    pool_values += column.pool->size();
  }
  std::printf("encode microbench: %s rows x %zu cols in %s s  (%.0f ns/row, "
              "%llu distinct pooled values)\n\n",
              bench::WithCommas(encoded.rows).c_str(), groups.size(),
              Secs(wall).c_str(), ns_per_row,
              static_cast<unsigned long long>(pool_values));

  bench::BenchRecord record("ablation_kernels",
                            "encode_rows=" + std::to_string(encoded.rows));
  record.AddConfig("workload", "encode");
  record.AddConfig("rows", encoded.rows);
  record.AddConfig("columns", static_cast<uint64_t>(groups.size()));
  record.AddConfig("workers", static_cast<uint64_t>(workers));
  record.AddMetric("wall_seconds", wall);
  record.AddMetric("encode_ns_per_row", ns_per_row);
  record.AddMetric("pool_values", pool_values);
  record.CaptureMetrics(ctx.metrics());
  record.Emit();
}

void Run() {
  const size_t kWorkers = 8;
  const size_t fd_rows = ScaledRows(200000);
  const size_t dc_rows = ScaledRows(40000);

  std::printf("\n== Ablation: columnar detect kernels vs interpreted engine "
              "(%zu workers) ==\n",
              kWorkers);

  // Fig 9(a)-scale FD workload: TaxA, phi1 (zipcode -> city). Error rate
  // 2% keeps the workload detection-bound — at 10% both paths spend most
  // of their time materializing ~100k identical violations, which measures
  // the shared Detect/GenFix cost instead of the ablated decision loops.
  auto fd_data = DriverPhase("bench:datagen", [&] {
    return GenerateTaxA(fd_rows, 0.02, /*seed=*/fd_rows);
  });
  RunWorkload("fd", "phi1: FD: zipcode -> city", fd_data.dirty, kWorkers);

  // Blocked DC workload: equality blocking on zipcode, inequality on state.
  auto dc_data = DriverPhase("bench:datagen", [&] {
    return GenerateTaxA(dc_rows, 0.02, /*seed=*/dc_rows);
  });
  RunWorkload("dc", "phiD: DC: t1.zipcode = t2.zipcode & t1.state != t2.state",
              dc_data.dirty, kWorkers);

  RunEncodeMicrobench(fd_data.dirty, kWorkers);

  std::printf(
      "Expected shape: the kernel path's simulated wall time is several "
      "times lower on the FD workload (>= 3x; code-equality loops replace "
      "per-pair virtual Detect calls) with bit-identical output; encode "
      "cost stays tens of ns/row — amortized across every rule sharing the "
      "scope.\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
