// Ablation (Appendix F): Block pushdown to storage. When the dataset is
// stored logically partitioned on the rule's blocking attribute, rows that
// share a blocking key are already co-located, so detection runs without
// any shuffle. Compares the ordinary path against the pushdown path and
// reports the shuffle volume each moved.
#include <cstdio>

#include "bench_util.h"
#include "core/rule_engine.h"
#include "data/storage.h"
#include "datagen/datagen.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

void Run() {
  ResultTable table(
      "Ablation: Block pushdown to partitioned storage (TaxA phi1)",
      {"rows", "ordinary (s)", "shuffled", "pushdown (s)", "shuffled ",
       "violations match"});
  for (size_t base : {100000u, 400000u}) {
    size_t rows = ScaledRows(base);
    auto data = GenerateTaxA(rows, 0.1, /*seed=*/rows);
    auto rule_text = "phi1: FD: zipcode -> city";

    ExecutionContext plain_ctx(16);
    RuleEngine plain_engine(&plain_ctx);
    size_t plain_violations = 0;
    double plain = TimeSeconds([&] {
      auto r = plain_engine.Detect(data.dirty, *ParseRule(rule_text));
      plain_violations = r.ok() ? r->violations.size() : 0;
    });

    StorageManager storage;
    storage.Store("taxa", data.dirty, "zipcode", 32);
    ExecutionContext push_ctx(16);
    RuleEngine push_engine(&push_ctx);
    size_t push_violations = 0;
    DetectRequest push_request;
    push_request.storage = &storage;
    push_request.dataset = "taxa";
    push_request.rules = {*ParseRule(rule_text)};
    double pushed = TimeSeconds([&] {
      auto r = push_engine.Detect(push_request);
      push_violations = r.ok() ? r->front().violations.size() : 0;
    });

    bench::BenchRecord record("ablation_storage",
                              "rows=" + std::to_string(rows));
    record.AddConfig("rule", rule_text);
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(16));
    record.AddMetric("wall_seconds", pushed);
    record.AddMetric("plain_seconds", plain);
    record.AddMetric("violations", static_cast<uint64_t>(push_violations));
    record.AddMetric("plain_shuffled_records",
                     plain_ctx.metrics().shuffled_records());
    record.CaptureMetrics(push_ctx.metrics());
    record.Emit();

    table.AddRow({bench::WithCommas(rows), Secs(plain),
                  bench::WithCommas(plain_ctx.metrics().shuffled_records()),
                  Secs(pushed),
                  bench::WithCommas(push_ctx.metrics().shuffled_records()),
                  plain_violations == push_violations ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "Expected shape: identical violations; the pushdown path moves zero "
      "records across partitions (on a real cluster this is the network "
      "saving Appendix F targets; wall-clock also improves here by "
      "skipping the shuffle pass).\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
