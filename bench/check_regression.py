#!/usr/bin/env python3
"""Validate BENCH_*.json records and gate on simulated-wall regressions.

Every bench binary emits one-line JSON records (bench/bench_util.h,
BenchRecord) into a directory named by BD_BENCH_JSON_DIR. This script

 1. checks that every line of every BENCH_*.json file in --dir is valid
    JSON with the standardized fields (bench, label, config, metrics, and
    metrics.simulated_wall_seconds), and
 2. compares metrics.simulated_wall_seconds per (bench, label) against the
    committed baseline (bench/baselines/baseline.json); a result more than
    --threshold (default 25%) slower than baseline is a regression.

Besides the baseline comparison, records may carry self-describing
invariant gates: a record whose config has min_speedup > 0 must have
metrics.speedup >= that bound (bench_stream_ingest uses this to pin the
incremental-index advantage at >= 5x full re-detect). Gate failures are
correctness failures, not perf regressions — --advisory does not downgrade
them.

Exit status: 0 when everything validates and no regression (or --advisory
was given); 1 on malformed records, failed invariant gates, or when a
baseline entry was not produced by this run (a bench crashed or stopped
emitting its record — --advisory does not downgrade these, it only covers
regressions); 2 on regressions without --advisory.

--verbose prints the full per-bench delta table on success too (it always
prints on regression), so healthy CI logs still show every bench's
movement against baseline.

Updating the baseline: run the bench subset with the same BD_SCALE as CI,
then  python3 bench/check_regression.py --dir <dir> --update-baseline
which rewrites the committed bench/baselines/baseline.json (or the file
given via --baseline) from this run's records. --write-baseline <path>
does the same to an explicit path.
"""

import argparse
import glob
import json
import os
import sys

REQUIRED_TOP_LEVEL = ("bench", "label", "config", "metrics", "registry")
WALL_KEY = "simulated_wall_seconds"


def load_records(directory):
    """Parses every line of every BENCH_*.json file; returns (records, errors)."""
    records, errors = [], []
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        errors.append(f"no BENCH_*.json files found in {directory!r}")
    for path in paths:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    errors.append(f"{path}:{lineno}: blank line")
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    errors.append(f"{path}:{lineno}: invalid JSON: {exc}")
                    continue
                missing = [k for k in REQUIRED_TOP_LEVEL if k not in rec]
                if missing:
                    errors.append(f"{path}:{lineno}: missing fields {missing}")
                    continue
                if WALL_KEY not in rec["metrics"]:
                    errors.append(f"{path}:{lineno}: metrics.{WALL_KEY} missing")
                    continue
                records.append(rec)
    return records, errors


def key_of(record):
    return f"{record['bench']}|{record['label']}"


def print_delta_table(compared, threshold, stream):
    """Full per-bench delta table, worst ratio first, so the log shows
    every bench's movement — not just the offenders."""
    width = max(len(k) for k, *_ in compared)
    print(f"\nper-bench simulated-wall deltas "
          f"(threshold {threshold:.0%}):", file=stream)
    header = (f"{'bench|label':<{width}}  {'baseline_s':>12}  "
              f"{'current_s':>12}  {'ratio':>7}  status")
    print(header, file=stream)
    print("-" * len(header), file=stream)
    for key, base_wall, wall, ratio, status in sorted(
            compared, key=lambda row: row[3], reverse=True):
        print(f"{key:<{width}}  {base_wall:>12.6f}  {wall:>12.6f}  "
              f"{ratio:>6.2f}x  {status}", file=stream)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="directory with BENCH_*.json")
    parser.add_argument("--baseline", help="committed baseline JSON to compare against")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (0.25 = 25%%)")
    parser.add_argument("--advisory", action="store_true",
                        help="report regressions but exit 0 (first-run mode)")
    parser.add_argument("--verbose", action="store_true",
                        help="print the per-bench delta table even when "
                             "there are no regressions")
    parser.add_argument("--write-baseline",
                        help="write the current results as a new baseline and exit")
    parser.add_argument("--update-baseline", action="store_true",
                        help="regenerate the pinned baseline (--baseline "
                             "path, or the committed "
                             "bench/baselines/baseline.json) from this "
                             "run's records and exit")
    args = parser.parse_args()

    if args.update_baseline and not args.write_baseline:
        args.write_baseline = args.baseline or os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "baselines", "baseline.json")

    records, errors = load_records(args.dir)
    for e in errors:
        print(f"MALFORMED: {e}", file=sys.stderr)
    if errors:
        return 1
    print(f"validated {len(records)} record(s) from {args.dir}")

    gate_failures = []
    for rec in records:
        min_speedup = rec["config"].get("min_speedup", 0)
        if not min_speedup:
            continue
        speedup = rec["metrics"].get("speedup")
        if speedup is None:
            gate_failures.append(
                f"{key_of(rec)}: config.min_speedup={min_speedup} but the "
                f"record has no metrics.speedup")
        elif speedup < min_speedup:
            gate_failures.append(
                f"{key_of(rec)}: speedup {speedup:.2f}x below the bench's "
                f"own min_speedup gate of {min_speedup:.2f}x")
        else:
            print(f"      GATE  {key_of(rec)}: speedup {speedup:.2f}x >= "
                  f"{min_speedup:.2f}x")
    if gate_failures:
        for failure in gate_failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1

    current = {}
    for rec in records:
        # A bench emitting the same (bench, label) twice in one run keeps
        # the last record, matching the append semantics of BenchRecord.
        current[key_of(rec)] = rec["metrics"][WALL_KEY]

    if args.write_baseline:
        baseline = {k: {WALL_KEY: v} for k, v in sorted(current.items())}
        with open(args.write_baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {len(baseline)} baseline entries to {args.write_baseline}")
        return 0

    if not args.baseline:
        print("no --baseline given; validation-only run")
        return 0

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    regressions = []
    compared = []
    missing = []
    for key, base in sorted(baseline.items()):
        base_wall = base[WALL_KEY]
        if key not in current:
            missing.append(key)
            continue
        wall = current[key]
        ratio = wall / base_wall if base_wall > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSION"
            regressions.append((key, base_wall, wall, ratio))
        compared.append((key, base_wall, wall, ratio, status))
        print(f"{status:>10}  {key}: baseline {base_wall:.6f}s -> {wall:.6f}s "
              f"({ratio:.2f}x)")
    for key in sorted(set(current) - set(baseline)):
        print(f"NOTE: {key} has no baseline entry (new bench/label?)")

    if missing:
        # A baseline bench that produced no record this run means the
        # bench crashed, was dropped from the suite, or stopped emitting
        # its BENCH_<name>.json — none of which a perf gate may paper
        # over. This is a validation failure, so --advisory (which only
        # downgrades perf regressions) does not apply.
        for key in missing:
            print(f"MISSING: baseline entry {key!r} was not produced by "
                  f"this run (no matching record in any BENCH_*.json "
                  f"under {args.dir!r})", file=sys.stderr)
        print(f"\n{len(missing)} baseline bench(es) emitted no record; "
              f"if a bench was intentionally removed, refresh the "
              f"baseline with --write-baseline", file=sys.stderr)
        return 1

    if regressions:
        print_delta_table(compared, args.threshold, sys.stderr)
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} threshold", file=sys.stderr)
        return 0 if args.advisory else 2
    if args.verbose and compared:
        print_delta_table(compared, args.threshold, sys.stdout)
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
