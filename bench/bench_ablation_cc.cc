// Ablation (DESIGN.md §5): connected-components kernel choice for the
// repair hypergraph — BSP label propagation on the dataflow engine (the
// GraphX path of §5.1) vs sequential union-find. Both produce identical
// components; this bench shows their cost over violation graphs of growing
// size, produced by real detection runs on TaxA.
#include <cstdio>
#include <set>

#include "bench_util.h"
#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "repair/connected_components.h"
#include "repair/hypergraph.h"
#include "rules/parser.h"

namespace bigdansing {
namespace {

using bench::ResultTable;
using bench::ScaledRows;
using bench::Secs;
using bench::TimeSeconds;

void Run() {
  ResultTable table(
      "Ablation: connected components over the violation hypergraph",
      {"rows", "edges", "nodes", "BSP (s)", "union-find (s)", "components"});
  for (size_t base : {10000u, 50000u, 100000u}) {
    size_t rows = ScaledRows(base);
    auto data = GenerateTaxA(rows, 0.1, /*seed=*/rows);
    ExecutionContext ctx(16);
    RuleEngine engine(&ctx);
    auto detection =
        engine.Detect(data.dirty, *ParseRule("phi1: FD: zipcode -> city"));
    if (!detection.ok()) continue;
    ViolationHypergraph graph(detection->violations);
    auto nodes = graph.AllNodes();
    auto edges = graph.StarEdges();

    ComponentLabels bsp_labels;
    double bsp = TimeSeconds(
        [&] { bsp_labels = BspConnectedComponents(&ctx, nodes, edges); });
    ComponentLabels uf_labels;
    double uf = TimeSeconds(
        [&] { uf_labels = UnionFindConnectedComponents(nodes, edges); });

    // Count distinct components (and assert agreement as a sanity check).
    std::set<uint64_t> components;
    size_t mismatches = 0;
    for (const auto& [node, label] : uf_labels) {
      components.insert(label);
      if (bsp_labels.at(node) != label) ++mismatches;
    }
    if (mismatches != 0) {
      std::fprintf(stderr, "BSP/union-find mismatch on %zu nodes!\n",
                   mismatches);
    }
    bench::BenchRecord record("ablation_cc", "rows=" + std::to_string(rows));
    record.AddConfig("rows", static_cast<uint64_t>(rows));
    record.AddConfig("workers", static_cast<uint64_t>(16));
    record.AddMetric("wall_seconds", bsp);
    record.AddMetric("union_find_seconds", uf);
    record.AddMetric("violations",
                     static_cast<uint64_t>(detection->violations.size()));
    record.AddMetric("components", static_cast<uint64_t>(components.size()));
    record.CaptureMetrics(ctx.metrics());
    record.Emit();
    table.AddRow({bench::WithCommas(rows), bench::WithCommas(edges.size()),
                  bench::WithCommas(nodes.size()), Secs(bsp), Secs(uf),
                  bench::WithCommas(components.size())});
  }
  table.Print();
  std::printf(
      "Expected shape: identical components; union-find is cheaper on one "
      "node (BigDansing uses the BSP path because components must be found "
      "on data too large for one machine — the cost here is the price of "
      "distribution).\n");
}

}  // namespace
}  // namespace bigdansing

int main() {
  bigdansing::Run();
  return 0;
}
