file(REMOVE_RECURSE
  "CMakeFiles/multi_dc_test.dir/multi_dc_test.cc.o"
  "CMakeFiles/multi_dc_test.dir/multi_dc_test.cc.o.d"
  "multi_dc_test"
  "multi_dc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_dc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
