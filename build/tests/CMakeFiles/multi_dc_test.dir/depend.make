# Empty dependencies file for multi_dc_test.
# This may be replaced when dependencies are built.
