file(REMOVE_RECURSE
  "CMakeFiles/violation_io_test.dir/violation_io_test.cc.o"
  "CMakeFiles/violation_io_test.dir/violation_io_test.cc.o.d"
  "violation_io_test"
  "violation_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violation_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
