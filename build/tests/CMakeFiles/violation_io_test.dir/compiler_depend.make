# Empty compiler generated dependencies file for violation_io_test.
# This may be replaced when dependencies are built.
