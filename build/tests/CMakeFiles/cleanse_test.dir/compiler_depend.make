# Empty compiler generated dependencies file for cleanse_test.
# This may be replaced when dependencies are built.
