file(REMOVE_RECURSE
  "CMakeFiles/ocjoin_test.dir/ocjoin_test.cc.o"
  "CMakeFiles/ocjoin_test.dir/ocjoin_test.cc.o.d"
  "ocjoin_test"
  "ocjoin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
