# Empty dependencies file for ocjoin_test.
# This may be replaced when dependencies are built.
