# Empty compiler generated dependencies file for iejoin_test.
# This may be replaced when dependencies are built.
