file(REMOVE_RECURSE
  "CMakeFiles/iejoin_test.dir/iejoin_test.cc.o"
  "CMakeFiles/iejoin_test.dir/iejoin_test.cc.o.d"
  "iejoin_test"
  "iejoin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iejoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
