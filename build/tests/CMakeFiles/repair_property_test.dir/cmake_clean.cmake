file(REMOVE_RECURSE
  "CMakeFiles/repair_property_test.dir/repair_property_test.cc.o"
  "CMakeFiles/repair_property_test.dir/repair_property_test.cc.o.d"
  "repair_property_test"
  "repair_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
