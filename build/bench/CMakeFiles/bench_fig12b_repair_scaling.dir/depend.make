# Empty dependencies file for bench_fig12b_repair_scaling.
# This may be replaced when dependencies are built.
