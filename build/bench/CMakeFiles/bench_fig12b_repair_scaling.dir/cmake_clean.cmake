file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12b_repair_scaling.dir/bench_fig12b_repair_scaling.cc.o"
  "CMakeFiles/bench_fig12b_repair_scaling.dir/bench_fig12b_repair_scaling.cc.o.d"
  "CMakeFiles/bench_fig12b_repair_scaling.dir/util.cc.o"
  "CMakeFiles/bench_fig12b_repair_scaling.dir/util.cc.o.d"
  "bench_fig12b_repair_scaling"
  "bench_fig12b_repair_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12b_repair_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
