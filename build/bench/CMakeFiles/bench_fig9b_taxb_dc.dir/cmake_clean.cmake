file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9b_taxb_dc.dir/bench_fig9b_taxb_dc.cc.o"
  "CMakeFiles/bench_fig9b_taxb_dc.dir/bench_fig9b_taxb_dc.cc.o.d"
  "CMakeFiles/bench_fig9b_taxb_dc.dir/util.cc.o"
  "CMakeFiles/bench_fig9b_taxb_dc.dir/util.cc.o.d"
  "bench_fig9b_taxb_dc"
  "bench_fig9b_taxb_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_taxb_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
