# Empty dependencies file for bench_fig9b_taxb_dc.
# This may be replaced when dependencies are built.
