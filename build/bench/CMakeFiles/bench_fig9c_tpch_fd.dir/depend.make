# Empty dependencies file for bench_fig9c_tpch_fd.
# This may be replaced when dependencies are built.
