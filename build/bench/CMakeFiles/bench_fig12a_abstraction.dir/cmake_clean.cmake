file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12a_abstraction.dir/bench_fig12a_abstraction.cc.o"
  "CMakeFiles/bench_fig12a_abstraction.dir/bench_fig12a_abstraction.cc.o.d"
  "CMakeFiles/bench_fig12a_abstraction.dir/util.cc.o"
  "CMakeFiles/bench_fig12a_abstraction.dir/util.cc.o.d"
  "bench_fig12a_abstraction"
  "bench_fig12a_abstraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12a_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
