# Empty dependencies file for bench_fig12a_abstraction.
# This may be replaced when dependencies are built.
