# Empty dependencies file for bench_fig10b_multinode_dc.
# This may be replaced when dependencies are built.
