file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_multinode_dc.dir/bench_fig10b_multinode_dc.cc.o"
  "CMakeFiles/bench_fig10b_multinode_dc.dir/bench_fig10b_multinode_dc.cc.o.d"
  "CMakeFiles/bench_fig10b_multinode_dc.dir/util.cc.o"
  "CMakeFiles/bench_fig10b_multinode_dc.dir/util.cc.o.d"
  "bench_fig10b_multinode_dc"
  "bench_fig10b_multinode_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_multinode_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
