file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9a_taxa_fd.dir/bench_fig9a_taxa_fd.cc.o"
  "CMakeFiles/bench_fig9a_taxa_fd.dir/bench_fig9a_taxa_fd.cc.o.d"
  "CMakeFiles/bench_fig9a_taxa_fd.dir/util.cc.o"
  "CMakeFiles/bench_fig9a_taxa_fd.dir/util.cc.o.d"
  "bench_fig9a_taxa_fd"
  "bench_fig9a_taxa_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_taxa_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
