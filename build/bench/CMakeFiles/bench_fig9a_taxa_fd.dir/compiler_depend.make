# Empty compiler generated dependencies file for bench_fig9a_taxa_fd.
# This may be replaced when dependencies are built.
