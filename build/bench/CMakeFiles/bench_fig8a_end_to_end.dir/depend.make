# Empty dependencies file for bench_fig8a_end_to_end.
# This may be replaced when dependencies are built.
