# Empty dependencies file for bench_fig10a_multinode_fd.
# This may be replaced when dependencies are built.
