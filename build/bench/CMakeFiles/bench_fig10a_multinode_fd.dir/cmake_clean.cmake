file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_multinode_fd.dir/bench_fig10a_multinode_fd.cc.o"
  "CMakeFiles/bench_fig10a_multinode_fd.dir/bench_fig10a_multinode_fd.cc.o.d"
  "CMakeFiles/bench_fig10a_multinode_fd.dir/util.cc.o"
  "CMakeFiles/bench_fig10a_multinode_fd.dir/util.cc.o.d"
  "bench_fig10a_multinode_fd"
  "bench_fig10a_multinode_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_multinode_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
