file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_consolidation.dir/bench_ablation_consolidation.cc.o"
  "CMakeFiles/bench_ablation_consolidation.dir/bench_ablation_consolidation.cc.o.d"
  "CMakeFiles/bench_ablation_consolidation.dir/util.cc.o"
  "CMakeFiles/bench_ablation_consolidation.dir/util.cc.o.d"
  "bench_ablation_consolidation"
  "bench_ablation_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
