# Empty dependencies file for bench_fig11a_scaleout.
# This may be replaced when dependencies are built.
