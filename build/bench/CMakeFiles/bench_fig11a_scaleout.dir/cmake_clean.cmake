file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_scaleout.dir/bench_fig11a_scaleout.cc.o"
  "CMakeFiles/bench_fig11a_scaleout.dir/bench_fig11a_scaleout.cc.o.d"
  "CMakeFiles/bench_fig11a_scaleout.dir/util.cc.o"
  "CMakeFiles/bench_fig11a_scaleout.dir/util.cc.o.d"
  "bench_fig11a_scaleout"
  "bench_fig11a_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
