# Empty compiler generated dependencies file for bench_fig11c_join_opts.
# This may be replaced when dependencies are built.
