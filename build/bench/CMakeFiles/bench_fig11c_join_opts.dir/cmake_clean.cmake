file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11c_join_opts.dir/bench_fig11c_join_opts.cc.o"
  "CMakeFiles/bench_fig11c_join_opts.dir/bench_fig11c_join_opts.cc.o.d"
  "CMakeFiles/bench_fig11c_join_opts.dir/util.cc.o"
  "CMakeFiles/bench_fig11c_join_opts.dir/util.cc.o.d"
  "bench_fig11c_join_opts"
  "bench_fig11c_join_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11c_join_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
