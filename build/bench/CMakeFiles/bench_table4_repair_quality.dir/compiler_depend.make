# Empty compiler generated dependencies file for bench_table4_repair_quality.
# This may be replaced when dependencies are built.
