file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c_large_tpch.dir/bench_fig10c_large_tpch.cc.o"
  "CMakeFiles/bench_fig10c_large_tpch.dir/bench_fig10c_large_tpch.cc.o.d"
  "CMakeFiles/bench_fig10c_large_tpch.dir/util.cc.o"
  "CMakeFiles/bench_fig10c_large_tpch.dir/util.cc.o.d"
  "bench_fig10c_large_tpch"
  "bench_fig10c_large_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_large_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
