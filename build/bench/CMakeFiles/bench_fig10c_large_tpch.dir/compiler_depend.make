# Empty compiler generated dependencies file for bench_fig10c_large_tpch.
# This may be replaced when dependencies are built.
