# Empty compiler generated dependencies file for bench_fig8b_detect_vs_repair.
# This may be replaced when dependencies are built.
