file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_detect_vs_repair.dir/bench_fig8b_detect_vs_repair.cc.o"
  "CMakeFiles/bench_fig8b_detect_vs_repair.dir/bench_fig8b_detect_vs_repair.cc.o.d"
  "CMakeFiles/bench_fig8b_detect_vs_repair.dir/util.cc.o"
  "CMakeFiles/bench_fig8b_detect_vs_repair.dir/util.cc.o.d"
  "bench_fig8b_detect_vs_repair"
  "bench_fig8b_detect_vs_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_detect_vs_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
