# Empty compiler generated dependencies file for bench_fig11b_dedup.
# This may be replaced when dependencies are built.
