file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_dedup.dir/bench_fig11b_dedup.cc.o"
  "CMakeFiles/bench_fig11b_dedup.dir/bench_fig11b_dedup.cc.o.d"
  "CMakeFiles/bench_fig11b_dedup.dir/util.cc.o"
  "CMakeFiles/bench_fig11b_dedup.dir/util.cc.o.d"
  "bench_fig11b_dedup"
  "bench_fig11b_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
