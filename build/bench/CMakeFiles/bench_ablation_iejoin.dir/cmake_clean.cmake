file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_iejoin.dir/bench_ablation_iejoin.cc.o"
  "CMakeFiles/bench_ablation_iejoin.dir/bench_ablation_iejoin.cc.o.d"
  "CMakeFiles/bench_ablation_iejoin.dir/util.cc.o"
  "CMakeFiles/bench_ablation_iejoin.dir/util.cc.o.d"
  "bench_ablation_iejoin"
  "bench_ablation_iejoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_iejoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
