# Empty dependencies file for bench_ablation_iejoin.
# This may be replaced when dependencies are built.
