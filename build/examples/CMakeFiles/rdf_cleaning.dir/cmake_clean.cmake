file(REMOVE_RECURSE
  "CMakeFiles/rdf_cleaning.dir/rdf_cleaning.cpp.o"
  "CMakeFiles/rdf_cleaning.dir/rdf_cleaning.cpp.o.d"
  "rdf_cleaning"
  "rdf_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
