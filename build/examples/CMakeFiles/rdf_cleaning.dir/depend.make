# Empty dependencies file for rdf_cleaning.
# This may be replaced when dependencies are built.
