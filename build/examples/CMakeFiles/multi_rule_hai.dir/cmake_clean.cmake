file(REMOVE_RECURSE
  "CMakeFiles/multi_rule_hai.dir/multi_rule_hai.cpp.o"
  "CMakeFiles/multi_rule_hai.dir/multi_rule_hai.cpp.o.d"
  "multi_rule_hai"
  "multi_rule_hai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_rule_hai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
