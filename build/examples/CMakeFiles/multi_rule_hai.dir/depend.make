# Empty dependencies file for multi_rule_hai.
# This may be replaced when dependencies are built.
