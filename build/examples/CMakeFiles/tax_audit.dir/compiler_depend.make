# Empty compiler generated dependencies file for tax_audit.
# This may be replaced when dependencies are built.
