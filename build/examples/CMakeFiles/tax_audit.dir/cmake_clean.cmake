file(REMOVE_RECURSE
  "CMakeFiles/tax_audit.dir/tax_audit.cpp.o"
  "CMakeFiles/tax_audit.dir/tax_audit.cpp.o.d"
  "tax_audit"
  "tax_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tax_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
