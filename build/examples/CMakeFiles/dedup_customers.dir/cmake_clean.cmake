file(REMOVE_RECURSE
  "CMakeFiles/dedup_customers.dir/dedup_customers.cpp.o"
  "CMakeFiles/dedup_customers.dir/dedup_customers.cpp.o.d"
  "dedup_customers"
  "dedup_customers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_customers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
