# Empty dependencies file for dedup_customers.
# This may be replaced when dependencies are built.
