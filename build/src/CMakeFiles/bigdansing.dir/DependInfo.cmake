
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/nadeef_baseline.cc" "src/CMakeFiles/bigdansing.dir/baselines/nadeef_baseline.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/baselines/nadeef_baseline.cc.o.d"
  "/root/repo/src/baselines/sql_baseline.cc" "src/CMakeFiles/bigdansing.dir/baselines/sql_baseline.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/baselines/sql_baseline.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/bigdansing.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/bigdansing.dir/common/status.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/bigdansing.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/bigdansing.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/bigdansing.cc" "src/CMakeFiles/bigdansing.dir/core/bigdansing.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/core/bigdansing.cc.o.d"
  "/root/repo/src/core/iejoin.cc" "src/CMakeFiles/bigdansing.dir/core/iejoin.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/core/iejoin.cc.o.d"
  "/root/repo/src/core/job.cc" "src/CMakeFiles/bigdansing.dir/core/job.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/core/job.cc.o.d"
  "/root/repo/src/core/logical_plan.cc" "src/CMakeFiles/bigdansing.dir/core/logical_plan.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/core/logical_plan.cc.o.d"
  "/root/repo/src/core/multi_dc.cc" "src/CMakeFiles/bigdansing.dir/core/multi_dc.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/core/multi_dc.cc.o.d"
  "/root/repo/src/core/ocjoin.cc" "src/CMakeFiles/bigdansing.dir/core/ocjoin.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/core/ocjoin.cc.o.d"
  "/root/repo/src/core/physical_plan.cc" "src/CMakeFiles/bigdansing.dir/core/physical_plan.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/core/physical_plan.cc.o.d"
  "/root/repo/src/core/rule_engine.cc" "src/CMakeFiles/bigdansing.dir/core/rule_engine.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/core/rule_engine.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/bigdansing.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/data/csv.cc.o.d"
  "/root/repo/src/data/rdf.cc" "src/CMakeFiles/bigdansing.dir/data/rdf.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/data/rdf.cc.o.d"
  "/root/repo/src/data/row.cc" "src/CMakeFiles/bigdansing.dir/data/row.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/data/row.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/bigdansing.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/data/schema.cc.o.d"
  "/root/repo/src/data/storage.cc" "src/CMakeFiles/bigdansing.dir/data/storage.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/data/storage.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/bigdansing.dir/data/table.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/data/table.cc.o.d"
  "/root/repo/src/data/value.cc" "src/CMakeFiles/bigdansing.dir/data/value.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/data/value.cc.o.d"
  "/root/repo/src/dataflow/mapreduce.cc" "src/CMakeFiles/bigdansing.dir/dataflow/mapreduce.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/dataflow/mapreduce.cc.o.d"
  "/root/repo/src/datagen/datagen.cc" "src/CMakeFiles/bigdansing.dir/datagen/datagen.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/datagen/datagen.cc.o.d"
  "/root/repo/src/repair/blackbox.cc" "src/CMakeFiles/bigdansing.dir/repair/blackbox.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/repair/blackbox.cc.o.d"
  "/root/repo/src/repair/connected_components.cc" "src/CMakeFiles/bigdansing.dir/repair/connected_components.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/repair/connected_components.cc.o.d"
  "/root/repo/src/repair/equivalence_class.cc" "src/CMakeFiles/bigdansing.dir/repair/equivalence_class.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/repair/equivalence_class.cc.o.d"
  "/root/repo/src/repair/hypergraph.cc" "src/CMakeFiles/bigdansing.dir/repair/hypergraph.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/repair/hypergraph.cc.o.d"
  "/root/repo/src/repair/hypergraph_repair.cc" "src/CMakeFiles/bigdansing.dir/repair/hypergraph_repair.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/repair/hypergraph_repair.cc.o.d"
  "/root/repo/src/repair/partitioner.cc" "src/CMakeFiles/bigdansing.dir/repair/partitioner.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/repair/partitioner.cc.o.d"
  "/root/repo/src/repair/quality.cc" "src/CMakeFiles/bigdansing.dir/repair/quality.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/repair/quality.cc.o.d"
  "/root/repo/src/rules/cfd_rule.cc" "src/CMakeFiles/bigdansing.dir/rules/cfd_rule.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/rules/cfd_rule.cc.o.d"
  "/root/repo/src/rules/check_rule.cc" "src/CMakeFiles/bigdansing.dir/rules/check_rule.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/rules/check_rule.cc.o.d"
  "/root/repo/src/rules/dc_rule.cc" "src/CMakeFiles/bigdansing.dir/rules/dc_rule.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/rules/dc_rule.cc.o.d"
  "/root/repo/src/rules/fd_rule.cc" "src/CMakeFiles/bigdansing.dir/rules/fd_rule.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/rules/fd_rule.cc.o.d"
  "/root/repo/src/rules/parser.cc" "src/CMakeFiles/bigdansing.dir/rules/parser.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/rules/parser.cc.o.d"
  "/root/repo/src/rules/predicate.cc" "src/CMakeFiles/bigdansing.dir/rules/predicate.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/rules/predicate.cc.o.d"
  "/root/repo/src/rules/similarity.cc" "src/CMakeFiles/bigdansing.dir/rules/similarity.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/rules/similarity.cc.o.d"
  "/root/repo/src/rules/violation.cc" "src/CMakeFiles/bigdansing.dir/rules/violation.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/rules/violation.cc.o.d"
  "/root/repo/src/rules/violation_io.cc" "src/CMakeFiles/bigdansing.dir/rules/violation_io.cc.o" "gcc" "src/CMakeFiles/bigdansing.dir/rules/violation_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
