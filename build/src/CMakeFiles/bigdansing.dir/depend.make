# Empty dependencies file for bigdansing.
# This may be replaced when dependencies are built.
