file(REMOVE_RECURSE
  "libbigdansing.a"
)
