// Quickstart: cleanse the paper's running example (Table 1) with two
// declarative rules — the FD φF (zipcode -> city) and the DC φD
// (no one with a lower salary pays a higher tax rate).
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "core/bigdansing.h"
#include "data/csv.h"
#include "rules/parser.h"

using namespace bigdansing;

int main() {
  // The dirty tax records of Table 1 (t2/t4/t6 share zipcode 90210 but
  // disagree on the city; t1 pays a higher rate than t2 on a lower salary).
  const char* csv =
      "name,zipcode,city,state,salary,rate\n"
      "Annie,10011,NY,NY,24000,15\n"
      "Laure,90210,LA,CA,25000,10\n"
      "John,60601,CH,IL,40000,25\n"
      "Mark,90210,SF,CA,88000,30\n"
      "Robert,68027,CH,IL,30000,5\n"
      "Mary,90210,LA,CA,88000,30\n";
  auto table = ReadCsvString(csv, CsvOptions{});
  if (!table.ok()) {
    std::fprintf(stderr, "parse error: %s\n", table.status().ToString().c_str());
    return 1;
  }

  // Declarative rules; BigDansing generates the whole logical plan
  // (Scope -> Block -> Iterate -> Detect -> GenFix) from these lines.
  auto fd = ParseRule("phiF: FD: zipcode -> city");
  auto dc = ParseRule("phiD: DC: t1.rate > t2.rate & t1.salary < t2.salary");
  if (!fd.ok() || !dc.ok()) {
    std::fprintf(stderr, "rule error\n");
    return 1;
  }

  // A 4-worker embedded "cluster".
  ExecutionContext ctx(4);

  // Step 1: inspect the violations the RuleEngine finds.
  RuleEngine engine(&ctx);
  for (const RulePtr& rule : {*fd, *dc}) {
    auto detection = engine.Detect(*table, rule);
    if (!detection.ok()) {
      std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", detection->plan_description.c_str());
    std::printf("rule %s: %zu violations\n", rule->name().c_str(),
                detection->violations.size());
    for (const auto& vf : detection->violations) {
      std::printf("  rows {");
      for (RowId id : vf.violation.RowIds()) std::printf(" t%lld", static_cast<long long>(id));
      std::printf(" }  possible fixes:");
      for (const auto& fix : vf.fixes) {
        std::printf("  %s;", fix.ToString().c_str());
      }
      std::printf("\n");
    }
  }

  // Step 2: run the full cleanse loop (detect + distributed repair to a
  // fix point) and print the repaired instance.
  Table repaired = *table;
  CleanOptions options;
  // The hypergraph repair algorithm handles both the FD's equality fixes
  // and the DC's inequality fixes.
  options.repair_mode = RepairMode::kHypergraph;
  BigDansing system(&ctx, options);
  auto report = system.Clean(&repaired, {*fd, *dc});
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n\nrepaired dataset:\n%s", report->ToString().c_str(),
              WriteCsvString(repaired, CsvOptions{}).c_str());
  return 0;
}
