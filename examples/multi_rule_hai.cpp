// Multi-rule cleansing with shared scans and repair-quality measurement:
// the paper's HAI hospital workload with three FDs running concurrently
// (ϕ6: zipcode -> state, ϕ7: phone -> zipcode, ϕ8: provider_id -> city,
// phone). The engine consolidates the rules' plans (Algorithm 1) so the
// dataset is scanned once, and the iterative detect/repair loop converges
// in the same number of iterations the paper reports for NADEEF.
//
//   ./build/examples/multi_rule_hai [rows]
#include <cstdio>
#include <cstdlib>

#include "core/bigdansing.h"
#include "core/logical_plan.h"
#include "datagen/datagen.h"
#include "repair/quality.h"
#include "rules/parser.h"

using namespace bigdansing;

int main(int argc, char** argv) {
  const size_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  GeneratedData data = GenerateHai(rows, /*error_rate=*/0.1, /*seed=*/11,
                                   /*corrupt_columns=*/{2, 3, 4, 6});
  std::printf("hospital records: %zu rows, 10%% with an FD-covered error\n",
              data.dirty.num_rows());

  std::vector<RulePtr> rules = {
      *ParseRule("phi6: FD: zipcode -> state"),
      *ParseRule("phi7: FD: phone -> zipcode"),
      *ParseRule("phi8: FD: provider_id -> city, phone"),
  };

  // Show the consolidated logical plan for the three rules.
  std::vector<LogicalPlan> plans;
  for (const auto& rule : rules) {
    auto plan = BuildLogicalPlan(rule, data.dirty.schema(), "HAI");
    if (plan.ok()) plans.push_back(*plan);
  }
  LogicalPlan consolidated = ConsolidatePlan(MergePlans(plans));
  std::printf("\nconsolidated logical plan (%zu operators):\n%s\n",
              consolidated.ops.size(), consolidated.ToString().c_str());

  ExecutionContext ctx(8);
  BigDansing system(&ctx);
  Table repaired = data.dirty;
  auto report = system.Clean(&repaired, rules);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());

  auto quality = EvaluateRepair(data.dirty, repaired, data.clean);
  if (quality.ok()) {
    std::printf("\nrepair quality vs ground truth: %s\n",
                quality->ToString().c_str());
  }
  return 0;
}
