// Command-line cleansing tool: read a CSV, apply declarative rules, write
// the repaired CSV and a violations report. The "7-line data cleansing"
// user experience the paper's abstraction aims for.
//
// Usage:
//   clean_csv <input.csv> <output.csv> <rule>... [options]
//
//   <rule>     declarative rule text, e.g. 'FD: zipcode -> city' or
//              'DC: t1.salary > t2.salary & t1.rate < t2.rate'
//   --workers N          worker count of the embedded cluster (default 8)
//   --repair MODE        ec | hypergraph | distributed-ec (default ec)
//   --violations PATH    also write the first iteration's violations CSV
//   --max-iterations N   detect/repair rounds (default 10)
//
// Example:
//   ./build/examples/clean_csv dirty.csv clean.csv \
//       'phi1: FD: zipcode -> city' 'chk: CHECK: t1.salary < 0' \
//       --violations violations.csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/bigdansing.h"
#include "data/csv.h"
#include "rules/parser.h"
#include "rules/violation_io.h"

using namespace bigdansing;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "clean_csv: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: clean_csv <input.csv> <output.csv> <rule>... "
                 "[--workers N] [--repair ec|hypergraph|distributed-ec] "
                 "[--violations PATH] [--max-iterations N]\n");
    return 2;
  }
  std::string input_path = argv[1];
  std::string output_path = argv[2];
  std::vector<std::string> rule_texts;
  size_t workers = 8;
  std::string violations_path;
  CleanOptions options;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Fail("--workers needs a value");
      workers = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--repair") {
      const char* v = next();
      if (v == nullptr) return Fail("--repair needs a value");
      if (std::strcmp(v, "ec") == 0) {
        options.repair_mode = RepairMode::kEquivalenceClass;
      } else if (std::strcmp(v, "hypergraph") == 0) {
        options.repair_mode = RepairMode::kHypergraph;
      } else if (std::strcmp(v, "distributed-ec") == 0) {
        options.repair_mode = RepairMode::kDistributedEquivalenceClass;
      } else {
        return Fail(std::string("unknown repair mode '") + v + "'");
      }
    } else if (arg == "--violations") {
      const char* v = next();
      if (v == nullptr) return Fail("--violations needs a value");
      violations_path = v;
    } else if (arg == "--max-iterations") {
      const char* v = next();
      if (v == nullptr) return Fail("--max-iterations needs a value");
      options.max_iterations =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else {
      rule_texts.push_back(arg);
    }
  }
  if (rule_texts.empty()) return Fail("no rules given");

  auto table = ReadCsvFile(input_path, CsvOptions{});
  if (!table.ok()) return Fail(table.status().ToString());

  std::vector<RulePtr> rules;
  for (const auto& text : rule_texts) {
    auto rule = ParseRule(text);
    if (!rule.ok()) {
      return Fail("bad rule '" + text + "': " + rule.status().ToString());
    }
    rules.push_back(*rule);
  }

  ExecutionContext ctx(workers);
  BigDansing system(&ctx, options);

  if (!violations_path.empty()) {
    auto detections = system.Detect(*table, rules);
    if (!detections.ok()) return Fail(detections.status().ToString());
    std::vector<ViolationWithFixes> all;
    for (auto& d : *detections) {
      for (auto& v : d.violations) all.push_back(std::move(v));
    }
    Status written = WriteViolationsCsvFile(all, violations_path);
    if (!written.ok()) return Fail(written.ToString());
    std::printf("wrote %zu violations to %s\n", all.size(),
                violations_path.c_str());
  }

  Table working = *table;
  auto report = system.Clean(&working, rules);
  if (!report.ok()) return Fail(report.status().ToString());
  Status written = WriteCsvFile(working, output_path, CsvOptions{});
  if (!written.ok()) return Fail(written.ToString());

  auto changed = table->CountDifferingCells(working);
  std::printf("%s\nrepaired %s -> %s (%zu cells changed)\n",
              report->ToString().c_str(), input_path.c_str(),
              output_path.c_str(), changed.ok() ? *changed : 0);
  return 0;
}
