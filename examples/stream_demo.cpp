// Streaming-cleanse demo: opens a CleanStream session and ingests a
// drifting dirty table in micro-batches for a requested number of
// seconds, serving the observability endpoints so an operator (or the CI
// stream-smoke step) can watch the session mid-run:
//
//   BD_OBS_PORT=8080 ./build/examples/stream_demo 10 &
//   curl localhost:8080/streams     # live stream-session counters
//   curl localhost:8080/quality     # per-window quality telemetry
//
// Each Append carries a slice of rows whose dirty-city alphabet drifts
// with the batch number; every few batches a slice of earlier rows is
// retracted, so /streams shows appends, retractions, backpressure and
// index growth on a genuinely moving table. BD_STREAM_BATCH_ROWS /
// BD_STREAM_MAX_INFLIGHT shape the micro-batching (StreamOptions
// defaults).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/bigdansing.h"
#include "core/stream_session.h"
#include "data/csv.h"
#include "obs/http_server.h"
#include "obs/profiler.h"
#include "obs/quality.h"
#include "rules/parser.h"

using namespace bigdansing;

namespace {

// One micro-batch of the drifting tax table: `rows` records over
// ~rows/10+1 zipcodes, every 4th row per zipcode group disagreeing with
// its group's majority city. The wrong-city alphabet rotates with
// `phase`, so consecutive windows repair genuinely different values.
std::vector<Row> MakeBatch(size_t rows, size_t phase) {
  std::string csv = "name,zipcode,city,state,salary,rate\n";
  const size_t zipcodes = rows / 10 + 1;
  for (size_t i = 0; i < rows; ++i) {
    const size_t zip = i % zipcodes;
    const bool dirty = (i / zipcodes) % 4 == 3;
    const std::string wrong_city =
        "X" + std::to_string(phase % 5) + "_" + std::to_string(i % 7);
    csv += "p" + std::to_string(phase) + "_" + std::to_string(i) + "," +
           std::to_string(10000 + zip) + "," +
           (dirty ? wrong_city : "C" + std::to_string(zip)) + ",ST," +
           std::to_string(20000 + (i % 997) * 13) + "," +
           std::to_string(5 + i % 40) + "\n";
  }
  auto table = ReadCsvString(csv, CsvOptions{});
  std::vector<Row> batch;
  if (!table.ok()) return batch;
  for (const Row& row : table->rows()) {
    batch.emplace_back(-1, row.values());  // Session assigns fresh ids.
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const double run_seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  const size_t batch_rows = argc > 2
                                ? static_cast<size_t>(std::atol(argv[2]))
                                : 2000;

  // Examples do not link the bench bootstrap, so start the plane here.
  ObsServer::StartFromEnv();
  Profiler::StartFromEnv();
  QualityRecorder::Instance().set_enabled(true);

  auto schema_probe = ReadCsvString(
      "name,zipcode,city,state,salary,rate\n", CsvOptions{});
  auto fd = ParseRule("phiF: FD: zipcode -> city");
  auto fd_state = ParseRule("phiS: FD: zipcode -> state");
  if (!schema_probe.ok() || !fd.ok() || !fd_state.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  ExecutionContext ctx(4);
  BigDansing system(&ctx, CleanOptions{});
  Table table(schema_probe->schema());
  StreamOptions options;
  options.session_name = "stream-demo";
  auto session = system.OpenStream(&table, {*fd, *fd_state}, options);
  if (!session.ok()) {
    std::fprintf(stderr, "OpenStream failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(run_seconds);
  size_t batches = 0;
  size_t retractions = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    RowId before = static_cast<RowId>(table.num_rows());
    if (!(*session)->Append(MakeBatch(batch_rows, batches)).ok()) {
      std::fprintf(stderr, "Append failed\n");
      return 1;
    }
    auto window = (*session)->Poll();
    if (!window.ok()) {
      std::fprintf(stderr, "Poll failed: %s\n",
                   window.status().ToString().c_str());
      return 1;
    }
    ++batches;
    // Every third batch, retract a slice of the rows the previous batch
    // landed, so the index shrinks as well as grows.
    if (batches % 3 == 0 && before > 100) {
      std::vector<RowId> victims;
      for (RowId id = before - 100; id < before; ++id) victims.push_back(id);
      if (!(*session)->Retract(victims).ok()) {
        std::fprintf(stderr, "Retract failed\n");
        return 1;
      }
      ++retractions;
    }
  }
  auto flushed = (*session)->Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "Flush failed: %s\n",
                 flushed.status().ToString().c_str());
    return 1;
  }
  auto stats = (*session)->stats();
  if (!(*session)->Close().ok()) return 1;

  std::printf("stream_demo: %zu batches, %zu retraction rounds, "
              "%llu rows live, %llu violations, %llu fixes, "
              "%llu index blocks, port %u\n",
              batches, retractions,
              static_cast<unsigned long long>(stats.rows),
              static_cast<unsigned long long>(stats.violations_found),
              static_cast<unsigned long long>(stats.fixes_applied),
              static_cast<unsigned long long>(stats.index_blocks),
              ObsServer::Instance().port());
  QualityRecorder::WriteJsonlFromEnv();
  Profiler::WriteFoldedFromEnv();
  Profiler::Instance().Stop();
  ObsServer::Instance().Stop();
  return 0;
}
