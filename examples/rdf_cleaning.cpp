// BigDansing is not tied to the relational model: data units can be RDF
// triples (paper Appendix C). This example reproduces the appendix's
// scenario — two graduate students advised by the same professor may not
// study in different universities — with a UDF over the tabular view of a
// triple store.
//
//   ./build/examples/rdf_cleaning
#include <cstdio>

#include "core/rule_engine.h"
#include "data/rdf.h"
#include "rules/udf_rule.h"

using namespace bigdansing;

int main() {
  // The appendix's graph: John and Sally are both advised by William but
  // enrolled in different universities.
  TripleStore store({
      {"John", "student_in", "MIT"},
      {"Sally", "student_in", "Yale"},
      {"William", "professor_in", "MIT"},
      {"John", "advised_by", "William"},
      {"Sally", "advised_by", "William"},
  });

  // The rule works on joined (student, university, advisor) units that a
  // Scope+Block pipeline assembles from the triples. Here the UDF builds
  // that unit view itself: it scopes to student_in/advised_by triples and
  // blocks on the advisor extracted per student.
  Table table = store.ToTable();

  // First pass (outside the engine): student -> university / advisor maps,
  // the role the Appendix C plan's first Block+Iterate plays.
  auto rule = std::make_shared<UdfRule>("same-advisor-same-university");
  rule->set_symmetric(true)
      .set_block_key([&store](const Schema&, const Row& row) -> Value {
        // Block triples by the advisor of the subject; triples of subjects
        // without an advisor fall out of every block.
        if (row.value(1).ToString() != "student_in") return Value();
        for (const Triple& t : store.WithPredicate("advised_by")) {
          if (t.subject == row.value(0).ToString()) return Value(t.object);
        }
        return Value();
      })
      .set_detect([](const Schema& schema, const Row& a, const Row& b,
                     std::vector<Violation>* out) {
        // Both units are student_in triples of students sharing an advisor
        // (the blocking key); a violation is two different universities.
        if (a.value(2) == b.value(2)) return;
        Violation v;
        v.rule_name = "same-advisor-same-university";
        v.cells.push_back(UdfRule::MakeUdfCell(a, 2, schema));
        v.cells.push_back(UdfRule::MakeUdfCell(b, 2, schema));
        out->push_back(std::move(v));
      })
      .set_gen_fix([](const Schema&, const Violation& v, std::vector<Fix>* out) {
        Fix fix;
        fix.left = v.cells[0];
        fix.op = FixOp::kEq;
        fix.right = FixTerm::MakeCell(v.cells[1]);
        out->push_back(std::move(fix));
      });

  ExecutionContext ctx(2);
  RuleEngine engine(&ctx);
  auto detection = engine.Detect(table, rule);
  if (!detection.ok()) {
    std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
    return 1;
  }
  std::printf("triples: %zu; violations: %zu\n", store.size(),
              detection->violations.size());
  for (const auto& vf : detection->violations) {
    std::printf("  conflicting universities: %s vs %s; possible fix: %s\n",
                vf.violation.cells[0].value.ToString().c_str(),
                vf.violation.cells[1].value.ToString().c_str(),
                vf.fixes[0].ToString().c_str());
  }
  return 0;
}
