// Inequality denial constraints at scale: audits a synthetic tax dataset
// with the paper's φD — nobody with a lower salary may pay a higher rate —
// and repairs it with the hypergraph algorithm. Shows the OCJoin enhancer
// (§4.3) doing the heavy lifting: compare its candidate count with the
// n² a cross product would probe.
//
//   ./build/examples/tax_audit [rows]
#include <cstdio>
#include <cstdlib>

#include "core/bigdansing.h"
#include "datagen/datagen.h"
#include "repair/quality.h"
#include "rules/parser.h"

using namespace bigdansing;

int main(int argc, char** argv) {
  const size_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  GeneratedData data = GenerateTaxB(rows, /*error_rate=*/0.05, /*seed=*/3);
  std::printf("tax records: %zu rows, 5%% of rates perturbed downward\n",
              data.dirty.num_rows());

  auto rule = ParseRule("phiD: DC: t1.salary > t2.salary & t1.rate < t2.rate");
  if (!rule.ok()) {
    std::fprintf(stderr, "%s\n", rule.status().ToString().c_str());
    return 1;
  }

  ExecutionContext ctx(8);

  // Detection: OCJoin range-partitions on salary, sorts, prunes partition
  // pairs via min/max ranges, and sort-merge joins the survivors.
  RuleEngine engine(&ctx);
  auto detection = engine.Detect(data.dirty, *rule);
  if (!detection.ok()) {
    std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
    return 1;
  }
  const OCJoinStats& stats = detection->ocjoin_stats;
  std::printf("%s\n", detection->plan_description.c_str());
  std::printf(
      "violations: %zu\nOCJoin: %zu partitions; pruning kept %zu of %zu "
      "partition pairs; %zu candidate pairs probed (cross product would "
      "probe %zu)\n",
      detection->violations.size(), stats.num_partitions,
      stats.partition_pairs_after_pruning, stats.partition_pairs_total,
      stats.candidate_pairs, rows * (rows - 1));

  // Repair with the hypergraph algorithm (inequality fixes), then measure
  // how close the repaired rates are to the ground truth.
  CleanOptions options;
  options.repair_mode = RepairMode::kHypergraph;
  BigDansing system(&ctx, options);
  Table repaired = data.dirty;
  auto report = system.Clean(&repaired, {*rule});
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", report->ToString().c_str());

  auto distance = EvaluateRepairDistance(data.dirty, repaired, data.clean, "rate");
  if (distance.ok()) {
    std::printf("\nrate distance to ground truth: %s\n",
                distance->ToString().c_str());
  }
  return 0;
}
