// Live-observability demo: runs detect/repair cycles in a loop for a
// requested number of seconds while serving the observability endpoints,
// so an operator (or the CI obs-smoke step) can curl the process mid-run:
//
//   BD_OBS_PORT=8080 ./build/examples/obs_demo 10 &
//   curl localhost:8080/healthz
//   curl localhost:8080/metrics     # Prometheus text exposition
//   curl localhost:8080/stages      # live StageReports (in-flight stages)
//   curl localhost:8080/explain     # runtime EXPLAIN from open spans
//   curl localhost:8080/profilez    # folded stacks (flamegraph input)
//   curl localhost:8080/quality     # per-run quality telemetry + drift
//   curl localhost:8080/profile     # latest input-table column profile
//
// Each cycle cleans a freshly drifted instance of the table (the dirty
// rate and the dirty-city alphabet shift per cycle), so /quality serves a
// run history with real drift between snapshots. BD_PROFILE_HZ /
// BD_PROFILE_FOLDED also apply (sampling profiler); BD_QUALITY_JSONL
// exports the quality run history at exit.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/bigdansing.h"
#include "data/csv.h"
#include "obs/http_server.h"
#include "obs/profiler.h"
#include "obs/quality.h"
#include "rules/parser.h"

using namespace bigdansing;

namespace {

// A dirty synthetic tax table: `rows` records across `rows / 50 + 1`
// zipcodes, a `phase`-dependent share of which disagree with their
// zipcode's majority city. The drift per phase: the dirty rate cycles
// through ~10% / ~14% / ~25%, and the wrong-city alphabet rotates, so
// repeated quality snapshots differ in null-free but measurable ways
// (violation counts, top-k membership, distinct counts).
std::string MakeDirtyCsv(size_t rows, size_t phase) {
  std::string csv = "name,zipcode,city,state,salary,rate\n";
  const size_t zipcodes = rows / 50 + 1;
  const size_t dirty_stride = 10 - 3 * (phase % 3);  // 10, 7, 4
  for (size_t i = 0; i < rows; ++i) {
    const size_t zip = i % zipcodes;
    // Stride over each zipcode group's occurrence index (i / zipcodes),
    // not the row index: a row-index stride that divides the zipcode
    // count would dirty whole groups uniformly — consistent groups, zero
    // violations. Per-group striding guarantees mixed groups (~50 rows
    // per zipcode vs strides <= 10) at every phase.
    const bool dirty = (i / zipcodes) % dirty_stride == 3;
    const std::string wrong_city =
        "X" + std::to_string(phase % 5) + "_" + std::to_string(i % 7);
    csv += "p" + std::to_string(i) + "," + std::to_string(10000 + zip) + "," +
           (dirty ? wrong_city : "C" + std::to_string(zip)) + ",ST," +
           std::to_string(20000 + (i % 997) * 13) + "," +
           std::to_string(5 + i % 40) + "\n";
  }
  return csv;
}

}  // namespace

int main(int argc, char** argv) {
  const double run_seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  const size_t rows = argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 20000;

  // Examples do not link the bench bootstrap, so start the plane here.
  // StartFromEnv also enables the QualityRecorder; keep it on even without
  // a server so BD_QUALITY_JSONL works standalone.
  ObsServer::StartFromEnv();
  Profiler::StartFromEnv();
  QualityRecorder::Instance().set_enabled(true);

  auto fd = ParseRule("phiF: FD: zipcode -> city");
  if (!fd.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  ExecutionContext ctx(4);
  BigDansing system(&ctx, CleanOptions{});

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(run_seconds);
  size_t cycles = 0;
  uint64_t violations = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    // Each cycle cleans the next phase of the drifting table.
    auto table = ReadCsvString(MakeDirtyCsv(rows, cycles), CsvOptions{});
    if (!table.ok()) {
      std::fprintf(stderr, "csv parse failed\n");
      return 1;
    }
    Table working = *table;
    auto report = system.Clean(&working, {*fd});
    if (!report.ok()) {
      std::fprintf(stderr, "clean failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    violations = report->iterations.empty()
                     ? 0
                     : report->iterations.front().violations;
    ++cycles;
  }

  std::printf("obs_demo: %zu cycles, %llu violations last cycle, "
              "%llu quality runs, port %u\n",
              cycles, static_cast<unsigned long long>(violations),
              static_cast<unsigned long long>(
                  QualityRecorder::Instance().RunsBegun()),
              ObsServer::Instance().port());
  QualityRecorder::WriteJsonlFromEnv();
  Profiler::WriteFoldedFromEnv();
  Profiler::Instance().Stop();
  ObsServer::Instance().Stop();
  return 0;
}
