// Live-observability demo: runs detect/repair cycles in a loop for a
// requested number of seconds while serving the observability endpoints,
// so an operator (or the CI obs-smoke step) can curl the process mid-run:
//
//   BD_OBS_PORT=8080 ./build/examples/obs_demo 10 &
//   curl localhost:8080/healthz
//   curl localhost:8080/metrics     # Prometheus text exposition
//   curl localhost:8080/stages      # live StageReports (in-flight stages)
//   curl localhost:8080/explain     # runtime EXPLAIN from open spans
//   curl localhost:8080/profilez    # folded stacks (flamegraph input)
//
// BD_PROFILE_HZ / BD_PROFILE_FOLDED also apply (sampling profiler).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/bigdansing.h"
#include "data/csv.h"
#include "obs/http_server.h"
#include "obs/profiler.h"
#include "rules/parser.h"

using namespace bigdansing;

namespace {

// A dirty synthetic tax table: `rows` records across `rows / 50 + 1`
// zipcodes, ~10% of which disagree with their zipcode's majority city.
std::string MakeDirtyCsv(size_t rows) {
  std::string csv = "name,zipcode,city,state,salary,rate\n";
  const size_t zipcodes = rows / 50 + 1;
  for (size_t i = 0; i < rows; ++i) {
    const size_t zip = i % zipcodes;
    const bool dirty = i % 10 == 3;
    csv += "p" + std::to_string(i) + "," + std::to_string(10000 + zip) + "," +
           (dirty ? "X" + std::to_string(i % 7) : "C" + std::to_string(zip)) +
           ",ST," + std::to_string(20000 + (i % 997) * 13) + "," +
           std::to_string(5 + i % 40) + "\n";
  }
  return csv;
}

}  // namespace

int main(int argc, char** argv) {
  const double run_seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  const size_t rows = argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 20000;

  // Examples do not link the bench bootstrap, so start the plane here.
  ObsServer::StartFromEnv();
  Profiler::StartFromEnv();

  auto table = ReadCsvString(MakeDirtyCsv(rows), CsvOptions{});
  auto fd = ParseRule("phiF: FD: zipcode -> city");
  if (!table.ok() || !fd.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  ExecutionContext ctx(4);
  BigDansing system(&ctx, CleanOptions{});

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(run_seconds);
  size_t cycles = 0;
  uint64_t violations = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    Table working = *table;  // each cycle re-cleans the dirty instance
    auto report = system.Clean(&working, {*fd});
    if (!report.ok()) {
      std::fprintf(stderr, "clean failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    violations = report->iterations.empty()
                     ? 0
                     : report->iterations.front().violations;
    ++cycles;
  }

  std::printf("obs_demo: %zu cycles, %llu violations/cycle, port %u\n",
              cycles, static_cast<unsigned long long>(violations),
              ObsServer::Instance().port());
  Profiler::WriteFoldedFromEnv();
  Profiler::Instance().Stop();
  ObsServer::Instance().Stop();
  return 0;
}
