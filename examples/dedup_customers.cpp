// Deduplication with a procedural (UDF) rule — the paper's §6.5 scenario.
// Two customer rows are duplicates when their names and phones are
// Levenshtein-similar; the UDF supplies a blocking key (name prefix) so
// BigDansing only compares candidates inside blocks.
//
//   ./build/examples/dedup_customers [rows]
#include <cstdio>
#include <cstdlib>

#include "core/rule_engine.h"
#include "datagen/datagen.h"
#include "rules/similarity.h"
#include "rules/udf_rule.h"

using namespace bigdansing;

int main(int argc, char** argv) {
  const size_t base_rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  // Synthetic TPC-H-style customers: 2 exact copies per row plus 2% fuzzy
  // duplicates with random edits on name and phone.
  DedupData data = GenerateCustomerDedup(base_rows, /*exact_copies=*/2,
                                         /*fuzzy_rate=*/0.02, /*seed=*/7);
  std::printf("customers: %zu rows (%zu exact + %zu fuzzy duplicate pairs injected)\n",
              data.table.num_rows(), data.exact_pairs.size(),
              data.fuzzy_pairs.size());

  // The dedup rule: everything about it is user code. The engine only sees
  // Detect/GenFix plus the blocking hint.
  auto rule = std::make_shared<UdfRule>("dedup-customers");
  rule->set_symmetric(true)
      .set_relevant_attributes({"custkey", "name", "phone"})
      .set_block_key([](const Schema& schema, const Row& row) {
        // Blocking key: first two characters of the (scoped) name.
        size_t name = *schema.IndexOf("name");
        std::string value = row.value(name).ToString();
        return value.size() < 2 ? Value(value) : Value(value.substr(0, 2));
      })
      .set_detect([](const Schema& schema, const Row& a, const Row& b,
                     std::vector<Violation>* out) {
        size_t name = *schema.IndexOf("name");
        size_t phone = *schema.IndexOf("phone");
        if (!IsSimilar(a.value(name).ToString(), b.value(name).ToString(), 0.8) ||
            !IsSimilar(a.value(phone).ToString(), b.value(phone).ToString(), 0.7)) {
          return;
        }
        Violation v;
        v.rule_name = "dedup-customers";
        v.cells.push_back(UdfRule::MakeUdfCell(a, name, schema));
        v.cells.push_back(UdfRule::MakeUdfCell(b, name, schema));
        out->push_back(std::move(v));
      })
      .set_gen_fix([](const Schema&, const Violation& v, std::vector<Fix>* out) {
        // Propose equating the names so set semantics collapses the pair.
        Fix fix;
        fix.left = v.cells[0];
        fix.op = FixOp::kEq;
        fix.right = FixTerm::MakeCell(v.cells[1]);
        out->push_back(std::move(fix));
      });

  ExecutionContext ctx(8);
  RuleEngine engine(&ctx);
  auto detection = engine.Detect(data.table, rule);
  if (!detection.ok()) {
    std::fprintf(stderr, "%s\n", detection.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", detection->plan_description.c_str());
  std::printf("duplicate pairs found: %zu (Detect probed %llu candidate "
              "pairs instead of %zu)\n",
              detection->violations.size(),
              static_cast<unsigned long long>(detection->detect_calls),
              data.table.num_rows() * (data.table.num_rows() - 1) / 2);

  // Show a few matches.
  size_t shown = 0;
  for (const auto& vf : detection->violations) {
    if (++shown > 5) break;
    const auto& cells = vf.violation.cells;
    std::printf("  '%s' ~ '%s'\n", cells[0].value.ToString().c_str(),
                cells[1].value.ToString().c_str());
  }
  return 0;
}
